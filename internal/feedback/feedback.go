// Package feedback implements the relevance-feedback strategies of §2 of
// the paper — the machinery FeedbackBypass complements rather than
// replaces:
//
//   - query-point movement: Rocchio's formula [Sal88] and the optimal
//     score-weighted centroid of Ishikawa et al. [ISF98] (Eq. 2);
//   - re-weighting for weighted Euclidean distances: the early MARS rule
//     w_i = 1/σ_i [RHOM98] and the optimal rule w_i ∝ 1/σ_i² [ISF98];
//   - the optimal quadratic (MindReader) weight matrix W ∝ C⁻¹ for the
//     generalized ellipsoid distance [ISF98];
//
// plus an Engine that composes a movement rule and a weighting rule into
// the "compute new OQPs given the scores" step of the interactive loop
// (Figure 5 of the paper).
package feedback

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/distance"
	"repro/internal/vec"
)

// Binary relevance scores (§2: "the user can mark a result object either
// as good or bad"). Graded or continuous scores are equally valid: any
// non-negative score works, with 0 meaning irrelevant.
const (
	ScoreBad  = 0.0
	ScoreGood = 1.0
)

// ErrNoGoodMatches is returned when no result carries a positive score;
// callers should keep the current query parameters (the paper's engine
// simply has nothing to learn from such an iteration).
var ErrNoGoodMatches = errors.New("feedback: no positively scored results")

// MovementRule selects the query-point movement strategy.
type MovementRule int

const (
	// MoveDefault is the zero value and selects the paper's default
	// movement rule, MoveOptimal. Making the default its own named value
	// (rather than defaulting on a zero struct) lets callers ask for
	// MoveNone deliberately without it being mistaken for "unset".
	MoveDefault MovementRule = iota
	// MoveNone leaves the query point unchanged.
	MoveNone
	// MoveOptimal uses the score-weighted centroid of the good matches
	// (Eq. 2 of the paper, proved optimal in [ISF98]).
	MoveOptimal
	// MoveRocchio uses Rocchio's formula with the engine's α, β, γ.
	MoveRocchio
)

// String implements fmt.Stringer.
func (m MovementRule) String() string {
	switch m {
	case MoveDefault:
		return "default(optimal)"
	case MoveNone:
		return "none"
	case MoveOptimal:
		return "optimal"
	case MoveRocchio:
		return "rocchio"
	default:
		return fmt.Sprintf("movement(%d)", int(m))
	}
}

// WeightingRule selects the re-weighting strategy.
type WeightingRule int

const (
	// WeightDefault is the zero value and selects the paper's default
	// re-weighting rule, WeightOptimal.
	WeightDefault WeightingRule = iota
	// WeightNone keeps uniform weights.
	WeightNone
	// WeightMARS uses w_i = 1/σ_i (early MARS, [RHOM98]).
	WeightMARS
	// WeightOptimal uses w_i ∝ 1/σ_i² (optimal for weighted Euclidean,
	// [ISF98]).
	WeightOptimal
)

// String implements fmt.Stringer.
func (w WeightingRule) String() string {
	switch w {
	case WeightDefault:
		return "default(optimal)"
	case WeightNone:
		return "none"
	case WeightMARS:
		return "mars-1/sigma"
	case WeightOptimal:
		return "optimal-1/sigma2"
	default:
		return fmt.Sprintf("weighting(%d)", int(w))
	}
}

// GoodSubset returns the result vectors with positive scores and their
// scores.
func GoodSubset(results [][]float64, scores []float64) (good [][]float64, goodScores []float64, err error) {
	if len(results) != len(scores) {
		return nil, nil, fmt.Errorf("feedback: %d results but %d scores", len(results), len(scores))
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, nil, fmt.Errorf("feedback: invalid score %v at %d", s, i)
		}
		if s > 0 {
			good = append(good, results[i])
			goodScores = append(goodScores, s)
		}
	}
	return good, goodScores, nil
}

// OptimalQueryPoint computes Eq. 2 of the paper: the score-weighted
// average of the positively scored results,
//
//	q' = Σ_j Score(p_j)·p_j / Σ_j Score(p_j).
//
// It returns ErrNoGoodMatches when every score is zero.
func OptimalQueryPoint(results [][]float64, scores []float64) ([]float64, error) {
	good, goodScores, err := GoodSubset(results, scores)
	if err != nil {
		return nil, err
	}
	if len(good) == 0 {
		return nil, ErrNoGoodMatches
	}
	dim := len(good[0])
	out := make([]float64, dim)
	var total float64
	for j, p := range good {
		if len(p) != dim {
			return nil, fmt.Errorf("feedback: result %d has dimension %d, want %d", j, len(p), dim)
		}
		vec.Axpy(out, goodScores[j], p)
		total += goodScores[j]
	}
	vec.ScaleInPlace(out, 1/total)
	return out, nil
}

// Rocchio computes the classic Rocchio update
//
//	q' = α·q + β·centroid(good) − γ·centroid(bad)
//
// where good results are those with positive scores and bad results those
// with zero scores. When there are no bad results the γ term vanishes; when
// there are no good results it returns ErrNoGoodMatches.
func Rocchio(q []float64, results [][]float64, scores []float64, alpha, beta, gamma float64) ([]float64, error) {
	if len(results) != len(scores) {
		return nil, fmt.Errorf("feedback: %d results but %d scores", len(results), len(scores))
	}
	good := make([]float64, len(q))
	bad := make([]float64, len(q))
	var nGood, nBad int
	for i, p := range results {
		if len(p) != len(q) {
			return nil, fmt.Errorf("feedback: result %d has dimension %d, want %d", i, len(p), len(q))
		}
		if scores[i] > 0 {
			vec.AddInPlace(good, p)
			nGood++
		} else {
			vec.AddInPlace(bad, p)
			nBad++
		}
	}
	if nGood == 0 {
		return nil, ErrNoGoodMatches
	}
	out := vec.Scale(q, alpha)
	vec.Axpy(out, beta/float64(nGood), good)
	if nBad > 0 {
		vec.Axpy(out, -gamma/float64(nBad), bad)
	}
	return out, nil
}

// WeightedDimensionVariance computes the score-weighted per-dimension
// variance of the good matches around their score-weighted mean — the σ_i²
// of the re-weighting formulas.
func WeightedDimensionVariance(good [][]float64, scores []float64) ([]float64, error) {
	if len(good) == 0 {
		return nil, ErrNoGoodMatches
	}
	if len(good) != len(scores) {
		return nil, fmt.Errorf("feedback: %d vectors but %d scores", len(good), len(scores))
	}
	dim := len(good[0])
	mean := make([]float64, dim)
	var total float64
	for j, p := range good {
		if len(p) != dim {
			return nil, fmt.Errorf("feedback: vector %d has dimension %d, want %d", j, len(p), dim)
		}
		vec.Axpy(mean, scores[j], p)
		total += scores[j]
	}
	if total <= 0 {
		return nil, ErrNoGoodMatches
	}
	vec.ScaleInPlace(mean, 1/total)
	variance := make([]float64, dim)
	for j, p := range good {
		for i := range p {
			d := p[i] - mean[i]
			variance[i] += scores[j] * d * d
		}
	}
	vec.ScaleInPlace(variance, 1/total)
	return variance, nil
}

// Reweight derives weighted-Euclidean weights from the positively scored
// results according to the rule, flooring each variance at varFloor to
// keep weights finite on dimensions where the good matches agree exactly.
// The weights are normalized to geometric mean 1 (the det-1 normalization
// of MindReader), fixing the one redundant degree of freedom the paper
// notes in Example 1.
func Reweight(results [][]float64, scores []float64, rule WeightingRule, varFloor float64) ([]float64, error) {
	good, goodScores, err := GoodSubset(results, scores)
	if err != nil {
		return nil, err
	}
	if len(good) == 0 {
		return nil, ErrNoGoodMatches
	}
	if varFloor <= 0 {
		return nil, fmt.Errorf("feedback: variance floor must be positive, got %v", varFloor)
	}
	dim := len(good[0])
	if rule == WeightDefault {
		rule = WeightOptimal
	}
	if rule == WeightNone {
		return vec.Ones(dim), nil
	}
	variance, err := WeightedDimensionVariance(good, goodScores)
	if err != nil {
		return nil, err
	}
	w := make([]float64, dim)
	for i, v := range variance {
		if v < varFloor {
			v = varFloor
		}
		switch rule {
		case WeightMARS:
			w[i] = 1 / math.Sqrt(v)
		case WeightOptimal:
			w[i] = 1 / v
		default:
			return nil, fmt.Errorf("feedback: unknown weighting rule %v", rule)
		}
	}
	return NormalizeGeometricMean(w), nil
}

// NormalizeGeometricMean rescales positive weights so their geometric mean
// is 1, leaving the induced distance ordering unchanged.
func NormalizeGeometricMean(w []float64) []float64 {
	var logSum float64
	for _, x := range w {
		logSum += math.Log(x)
	}
	scale := math.Exp(-logSum / float64(len(w)))
	return vec.Scale(w, scale)
}

// OptimalQuadraticWeights computes the MindReader weight matrix
// W ∝ C⁻¹ where C is the score-weighted covariance of the good matches,
// ridge-regularized (C + ridge·I) so the inverse exists when the number of
// good matches is below the dimensionality (the situation [RH00] analyzes).
// The result is scaled to det(W)^(1/D) = 1.
func OptimalQuadraticWeights(results [][]float64, scores []float64, ridge float64) (*distance.Quadratic, error) {
	good, goodScores, err := GoodSubset(results, scores)
	if err != nil {
		return nil, err
	}
	if len(good) == 0 {
		return nil, ErrNoGoodMatches
	}
	if ridge <= 0 {
		return nil, fmt.Errorf("feedback: ridge must be positive, got %v", ridge)
	}
	dim := len(good[0])
	mean := make([]float64, dim)
	var total float64
	for j, p := range good {
		if len(p) != dim {
			return nil, fmt.Errorf("feedback: vector %d has dimension %d, want %d", j, len(p), dim)
		}
		vec.Axpy(mean, goodScores[j], p)
		total += goodScores[j]
	}
	vec.ScaleInPlace(mean, 1/total)
	cov := vec.NewMatrix(dim, dim)
	for j, p := range good {
		for a := 0; a < dim; a++ {
			da := goodScores[j] * (p[a] - mean[a])
			if da == 0 {
				continue
			}
			row := cov.Row(a)
			for b := 0; b < dim; b++ {
				row[b] += da * (p[b] - mean[b])
			}
		}
	}
	for i := range cov.Data {
		cov.Data[i] /= total
	}
	for i := 0; i < dim; i++ {
		cov.Set(i, i, cov.At(i, i)+ridge)
	}
	w, err := vec.Inverse(cov)
	if err != nil {
		return nil, fmt.Errorf("feedback: covariance inversion failed: %w", err)
	}
	// Symmetrize against rounding, then normalize det to 1.
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			m := (w.At(i, j) + w.At(j, i)) / 2
			w.Set(i, j, m)
			w.Set(j, i, m)
		}
	}
	det := vec.Det(w)
	if det > 0 {
		scale := math.Pow(det, -1/float64(dim))
		for i := range w.Data {
			w.Data[i] *= scale
		}
	}
	return distance.NewQuadratic(w)
}

// Options configures an Engine. The zero value selects the paper's
// defaults: MoveDefault and WeightDefault resolve to the optimal movement
// and re-weighting rules at construction, so Options{} is equivalent to
// DefaultOptions(), while a deliberate MoveNone/WeightNone (both non-zero
// values) survives construction unchanged.
type Options struct {
	Movement  MovementRule
	Weighting WeightingRule
	// Rocchio coefficients (used only with MoveRocchio). The common
	// defaults α=1, β=0.75, γ=0.25 are applied when all three are zero.
	Alpha, Beta, Gamma float64
	// VarianceFloor bounds 1/σ² weights; defaults to 1e-6 when zero.
	VarianceFloor float64
	// NormalizeQuery clamps the moved query point at zero and rescales it
	// to unit component sum after each movement step. Rocchio's update is
	// not a convex combination, so iterating it grows the query's mass
	// without bound on histogram features; normalized Rocchio is the
	// standard remedy [Sal88]. The optimal movement rule (Eq. 2) is a
	// convex combination of normalized vectors and never needs this.
	NormalizeQuery bool
}

// Engine composes a movement rule and a weighting rule into the feedback
// step of the interactive loop.
type Engine struct {
	opts Options
}

// DefaultOptions is the configuration the paper's experiments use: optimal
// query-point movement plus optimal 1/σ² re-weighting.
func DefaultOptions() Options {
	return Options{Movement: MoveOptimal, Weighting: WeightOptimal}
}

// New validates the options and returns an engine. The zero-value rules
// MoveDefault and WeightDefault resolve to the paper's optimal rules here;
// every other rule is taken literally.
func New(opts Options) (*Engine, error) {
	if opts.Movement < MoveDefault || opts.Movement > MoveRocchio {
		return nil, fmt.Errorf("feedback: unknown movement rule %d", opts.Movement)
	}
	if opts.Weighting < WeightDefault || opts.Weighting > WeightOptimal {
		return nil, fmt.Errorf("feedback: unknown weighting rule %d", opts.Weighting)
	}
	if opts.Movement == MoveDefault {
		opts.Movement = MoveOptimal
	}
	if opts.Weighting == WeightDefault {
		opts.Weighting = WeightOptimal
	}
	if opts.Alpha == 0 && opts.Beta == 0 && opts.Gamma == 0 {
		opts.Alpha, opts.Beta, opts.Gamma = 1, 0.75, 0.25
	}
	if opts.VarianceFloor == 0 {
		opts.VarianceFloor = 1e-6
	}
	if opts.VarianceFloor < 0 {
		return nil, fmt.Errorf("feedback: negative variance floor %v", opts.VarianceFloor)
	}
	return &Engine{opts: opts}, nil
}

// Name describes the engine configuration.
func (e *Engine) Name() string {
	return fmt.Sprintf("move=%s,weight=%s", e.opts.Movement, e.opts.Weighting)
}

// Refine computes the next query point and weight vector from the scored
// results of the current iteration. It returns ErrNoGoodMatches — with the
// inputs echoed back unchanged — when no result was marked relevant.
func (e *Engine) Refine(q []float64, results [][]float64, scores []float64) (newQ []float64, weights []float64, err error) {
	good, _, err := GoodSubset(results, scores)
	if err != nil {
		return nil, nil, err
	}
	if len(good) == 0 {
		return vec.Clone(q), vec.Ones(len(q)), ErrNoGoodMatches
	}
	switch e.opts.Movement {
	case MoveNone:
		newQ = vec.Clone(q)
	case MoveOptimal:
		newQ, err = OptimalQueryPoint(results, scores)
	case MoveRocchio:
		newQ, err = Rocchio(q, results, scores, e.opts.Alpha, e.opts.Beta, e.opts.Gamma)
	}
	if err != nil {
		return nil, nil, err
	}
	if e.opts.NormalizeQuery {
		clamped := vec.Clamp(newQ, 0, math.Inf(1))
		if normalized, nerr := vec.Normalize(clamped); nerr == nil {
			newQ = normalized
		}
	}
	weights, err = Reweight(results, scores, e.opts.Weighting, e.opts.VarianceFloor)
	if err != nil {
		return nil, nil, err
	}
	return newQ, weights, nil
}
