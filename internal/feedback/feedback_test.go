package feedback

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestGoodSubset(t *testing.T) {
	results := [][]float64{{1}, {2}, {3}}
	good, scores, err := GoodSubset(results, []float64{1, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 2 || good[0][0] != 1 || good[1][0] != 3 {
		t.Errorf("good = %v", good)
	}
	if scores[0] != 1 || scores[1] != 0.5 {
		t.Errorf("scores = %v", scores)
	}
	if _, _, err := GoodSubset(results, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := GoodSubset(results, []float64{1, -1, 0}); err == nil {
		t.Error("negative score should error")
	}
	if _, _, err := GoodSubset(results, []float64{1, math.NaN(), 0}); err == nil {
		t.Error("NaN score should error")
	}
}

func TestOptimalQueryPointEq2(t *testing.T) {
	results := [][]float64{{0, 0}, {2, 2}, {4, 0}}
	// Scores 1, 1, 0: centroid of first two.
	q, err := OptimalQueryPoint(results, []float64{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(q, []float64{1, 1}, 1e-12) {
		t.Errorf("q' = %v", q)
	}
	// Graded scores weight the average.
	q, err = OptimalQueryPoint(results, []float64{3, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(q, []float64{0.5, 0.5}, 1e-12) {
		t.Errorf("graded q' = %v", q)
	}
}

func TestOptimalQueryPointNoGood(t *testing.T) {
	_, err := OptimalQueryPoint([][]float64{{1}}, []float64{0})
	if !errors.Is(err, ErrNoGoodMatches) {
		t.Errorf("err = %v", err)
	}
}

func TestOptimalQueryPointRaggedResults(t *testing.T) {
	if _, err := OptimalQueryPoint([][]float64{{1, 2}, {3}}, []float64{1, 1}); err == nil {
		t.Error("ragged results should error")
	}
}

func TestRocchio(t *testing.T) {
	q := []float64{0, 0}
	results := [][]float64{{2, 0}, {0, 2}, {10, 10}}
	scores := []float64{1, 1, 0}
	// α=1, β=1, γ=1: q + goodCentroid − badCentroid = (1,1) − (10,10).
	got, err := Rocchio(q, results, scores, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, []float64{-9, -9}, 1e-12) {
		t.Errorf("Rocchio = %v", got)
	}
	// Without bad results the γ term vanishes.
	got, err = Rocchio(q, results[:2], scores[:2], 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(got, []float64{1, 1}, 1e-12) {
		t.Errorf("Rocchio no-bad = %v", got)
	}
	if _, err := Rocchio(q, results, []float64{0, 0, 0}, 1, 1, 1); !errors.Is(err, ErrNoGoodMatches) {
		t.Errorf("err = %v", err)
	}
	if _, err := Rocchio(q, results, []float64{1}, 1, 1, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Rocchio(q, [][]float64{{1}}, []float64{1}, 1, 1, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestWeightedDimensionVariance(t *testing.T) {
	good := [][]float64{{0, 5}, {2, 5}}
	v, err := WeightedDimensionVariance(good, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// dim 0: mean 1, var ((1)²+(1)²)/2 = 1; dim 1: constant → 0.
	if math.Abs(v[0]-1) > 1e-12 || v[1] != 0 {
		t.Errorf("variance = %v", v)
	}
	// Weighted: score 3 on first point pulls the mean.
	v, err = WeightedDimensionVariance(good, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// mean0 = (3·0 + 1·2)/4 = 0.5; var0 = (3·0.25 + 1·2.25)/4 = 0.75.
	if math.Abs(v[0]-0.75) > 1e-12 {
		t.Errorf("weighted variance = %v", v)
	}
	if _, err := WeightedDimensionVariance(nil, nil); !errors.Is(err, ErrNoGoodMatches) {
		t.Errorf("empty err = %v", err)
	}
}

func TestReweightOptimalFavorsLowVariance(t *testing.T) {
	// Good matches agree on dim 0 (tight) and disagree on dim 1 (loose):
	// the optimal rule must weight dim 0 far above dim 1.
	results := [][]float64{
		{0.50, 0.1},
		{0.51, 0.9},
		{0.49, 0.5},
		{0.50, 0.2},
	}
	scores := []float64{1, 1, 1, 1}
	w, err := Reweight(results, scores, WeightOptimal, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= w[1] {
		t.Errorf("weights = %v: tight dimension not favored", w)
	}
	// Geometric mean 1.
	gm := math.Sqrt(w[0] * w[1])
	if math.Abs(gm-1) > 1e-9 {
		t.Errorf("geometric mean = %v", gm)
	}
	// Optimal weights are proportional to 1/σ²: the ratio must equal the
	// inverse variance ratio.
	variance, _ := WeightedDimensionVariance(results, scores)
	wantRatio := variance[1] / variance[0]
	if math.Abs(w[0]/w[1]-wantRatio) > 1e-6*wantRatio {
		t.Errorf("weight ratio %v, want %v", w[0]/w[1], wantRatio)
	}
}

func TestReweightMARSIsInverseSigma(t *testing.T) {
	results := [][]float64{
		{0.5, 0.1},
		{0.7, 0.9},
	}
	scores := []float64{1, 1}
	w, err := Reweight(results, scores, WeightMARS, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	variance, _ := WeightedDimensionVariance(results, scores)
	wantRatio := math.Sqrt(variance[1] / variance[0])
	if math.Abs(w[0]/w[1]-wantRatio) > 1e-6*wantRatio {
		t.Errorf("MARS ratio %v, want %v", w[0]/w[1], wantRatio)
	}
}

func TestReweightSingleGoodMatchIsUniform(t *testing.T) {
	// One good match: zero variance everywhere, floored → uniform weights.
	w, err := Reweight([][]float64{{0.3, 0.7}}, []float64{1}, WeightOptimal, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(w, []float64{1, 1}, 1e-9) {
		t.Errorf("single-match weights = %v", w)
	}
}

func TestReweightErrors(t *testing.T) {
	if _, err := Reweight([][]float64{{1}}, []float64{0}, WeightOptimal, 1e-6); !errors.Is(err, ErrNoGoodMatches) {
		t.Errorf("err = %v", err)
	}
	if _, err := Reweight([][]float64{{1}}, []float64{1}, WeightOptimal, 0); err == nil {
		t.Error("zero floor should error")
	}
	if _, err := Reweight([][]float64{{1}}, []float64{1}, WeightingRule(99), 1e-6); err == nil {
		t.Error("unknown rule should error")
	}
	w, err := Reweight([][]float64{{1, 2}}, []float64{1}, WeightNone, 1e-6)
	if err != nil || !vec.Equal(w, []float64{1, 1}) {
		t.Errorf("WeightNone = %v, %v", w, err)
	}
}

func TestNormalizeGeometricMean(t *testing.T) {
	w := NormalizeGeometricMean([]float64{4, 1})
	if math.Abs(w[0]*w[1]-1) > 1e-12 {
		t.Errorf("product = %v", w[0]*w[1])
	}
	if math.Abs(w[0]/w[1]-4) > 1e-12 {
		t.Error("normalization must preserve ratios")
	}
}

func TestOptimalQuadraticWeights(t *testing.T) {
	// Good matches spread along (1,1): the optimal quadratic metric must
	// penalize the orthogonal direction (1,-1) more than the spread one.
	rng := rand.New(rand.NewSource(1))
	var results [][]float64
	var scores []float64
	for i := 0; i < 50; i++ {
		tv := rng.NormFloat64()
		results = append(results, []float64{tv + rng.NormFloat64()*0.05, tv - rng.NormFloat64()*0.05})
		scores = append(scores, 1)
	}
	q, err := OptimalQuadraticWeights(results, scores, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	along := q.Distance([]float64{0, 0}, []float64{1, 1})
	across := q.Distance([]float64{0, 0}, []float64{1, -1})
	if across <= along {
		t.Errorf("across = %v should exceed along = %v", across, along)
	}
	// det normalized to 1.
	det := vec.Det(q.Matrix())
	if math.Abs(det-1) > 1e-6 {
		t.Errorf("det = %v", det)
	}
}

func TestOptimalQuadraticWeightsFewMatches(t *testing.T) {
	// Fewer good matches than dimensions: ridge keeps it invertible (the
	// [RH00] regime).
	results := [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.2, 0.2, 0.3, 0.4},
	}
	q, err := OptimalQuadraticWeights(results, []float64{1, 1}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalQuadraticWeightsErrors(t *testing.T) {
	if _, err := OptimalQuadraticWeights([][]float64{{1}}, []float64{0}, 1e-3); !errors.Is(err, ErrNoGoodMatches) {
		t.Errorf("err = %v", err)
	}
	if _, err := OptimalQuadraticWeights([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("zero ridge should error")
	}
	if _, err := OptimalQuadraticWeights([][]float64{{1, 2}, {3}}, []float64{1, 1}, 1e-3); err == nil {
		t.Error("ragged should error")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Options{Movement: MovementRule(9)}); err == nil {
		t.Error("bad movement should error")
	}
	if _, err := New(Options{Weighting: WeightingRule(9)}); err == nil {
		t.Error("bad weighting should error")
	}
	if _, err := New(Options{VarianceFloor: -1}); err == nil {
		t.Error("negative floor should error")
	}
	e, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() == "" {
		t.Error("Name should be non-empty")
	}
}

func TestEngineRefine(t *testing.T) {
	e, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	results := [][]float64{{1, 0.5}, {1.2, 0.5}, {9, 9}}
	scores := []float64{1, 1, 0}
	newQ, w, err := e.Refine(q, results, scores)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(newQ, []float64{1.1, 0.5}, 1e-12) {
		t.Errorf("newQ = %v", newQ)
	}
	// Dim 1 is constant among good matches → floored variance → weight
	// above dim 0's.
	if w[1] <= w[0] {
		t.Errorf("weights = %v", w)
	}
}

func TestEngineRefineNoGoodEchoesInput(t *testing.T) {
	e, _ := New(DefaultOptions())
	q := []float64{0.3, 0.7}
	newQ, w, err := e.Refine(q, [][]float64{{1, 1}}, []float64{0})
	if !errors.Is(err, ErrNoGoodMatches) {
		t.Fatalf("err = %v", err)
	}
	if !vec.Equal(newQ, q) {
		t.Errorf("query echoed = %v", newQ)
	}
	if !vec.Equal(w, []float64{1, 1}) {
		t.Errorf("weights echoed = %v", w)
	}
}

func TestEngineRefineRocchioAndNone(t *testing.T) {
	e, err := New(Options{Movement: MoveRocchio, Weighting: WeightNone})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1, 1}
	results := [][]float64{{3, 3}}
	newQ, w, err := e.Refine(q, results, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults α=1, β=0.75: q + 0.75·(3,3) = (3.25, 3.25).
	if !vec.EqualTol(newQ, []float64{3.25, 3.25}, 1e-12) {
		t.Errorf("rocchio newQ = %v", newQ)
	}
	if !vec.Equal(w, []float64{1, 1}) {
		t.Errorf("weights = %v", w)
	}

	e2, _ := New(Options{Movement: MoveNone, Weighting: WeightOptimal})
	newQ, _, err = e2.Refine(q, results, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(newQ, q) {
		t.Errorf("MoveNone changed the query: %v", newQ)
	}
}

func TestRuleStrings(t *testing.T) {
	if MoveOptimal.String() != "optimal" || MoveRocchio.String() != "rocchio" || MoveNone.String() != "none" {
		t.Error("movement strings")
	}
	if WeightOptimal.String() == "" || WeightMARS.String() == "" || WeightNone.String() == "" {
		t.Error("weighting strings")
	}
	if MovementRule(42).String() == "" || WeightingRule(42).String() == "" {
		t.Error("unknown rule strings")
	}
}
