package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestNewSimplexValidation(t *testing.T) {
	if _, err := NewSimplex(nil); err == nil {
		t.Error("empty vertex list should error")
	}
	if _, err := NewSimplex([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("2 vertices of dim 2 should error (want dim 1)")
	}
	s, err := NewSimplex([][]float64{{0, 0}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestStandardSimplex(t *testing.T) {
	s := StandardSimplex(3)
	if s.Dim() != 3 || len(s.Vertices()) != 4 {
		t.Fatalf("unexpected shape: dim=%d verts=%d", s.Dim(), len(s.Vertices()))
	}
	if !vec.Equal(s.Vertex(0), []float64{0, 0, 0}) {
		t.Errorf("v0 = %v", s.Vertex(0))
	}
	if !vec.Equal(s.Vertex(2), []float64{0, 1, 0}) {
		t.Errorf("v2 = %v", s.Vertex(2))
	}
	// Normalized-histogram prefix vectors are inside.
	if !s.Contains([]float64{0.2, 0.3, 0.1}, DefaultTol) {
		t.Error("histogram point should be inside standard simplex")
	}
	if s.Contains([]float64{0.5, 0.6, 0.2}, DefaultTol) {
		t.Error("point with sum > 1 should be outside")
	}
}

func TestCoveringSimplexCoversUnitCube(t *testing.T) {
	for d := 1; d <= 5; d++ {
		s := CoveringSimplex(d)
		rng := rand.New(rand.NewSource(int64(d)))
		for trial := 0; trial < 50; trial++ {
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.Float64()
			}
			if !s.Contains(q, DefaultTol) {
				t.Fatalf("d=%d: cube point %v outside covering simplex", d, q)
			}
		}
		// The all-ones corner is the extreme case.
		ones := vec.Ones(d)
		if !s.Contains(ones, DefaultTol) {
			t.Fatalf("d=%d: corner of cube outside covering simplex", d)
		}
	}
}

func TestBarycentricKnown2D(t *testing.T) {
	s := StandardSimplex(2) // vertices (0,0), (1,0), (0,1)
	lam, err := s.Barycentric([]float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0.5}
	if !vec.EqualTol(lam, want, 1e-12) {
		t.Errorf("λ = %v, want %v", lam, want)
	}
}

func TestBarycentricDimensionMismatch(t *testing.T) {
	s := StandardSimplex(2)
	if _, err := s.Barycentric([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBarycentricDegenerateSimplex(t *testing.T) {
	// Three collinear points: no unique barycentric coordinates.
	s, err := NewSimplex([][]float64{{0, 0}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Barycentric([]float64{0.5, 0.5}); err == nil {
		t.Error("expected degenerate error for collinear vertices")
	}
	if s.Contains([]float64{0.5, 0.5}, DefaultTol) {
		t.Error("degenerate simplex should contain nothing")
	}
}

// Property: coordinates sum to 1 and reconstruct the point.
func TestBarycentricRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 5, 8, 15, 31} {
		s := StandardSimplex(d)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.Float64() * 2 / float64(d) // mixture of in/out points
			}
			lam, err := s.Barycentric(q)
			if err != nil {
				t.Fatalf("d=%d: %v", d, err)
			}
			if math.Abs(vec.Sum(lam)-1) > 1e-9 {
				t.Fatalf("d=%d: Σλ = %v", d, vec.Sum(lam))
			}
			back, err := s.FromBarycentric(lam)
			if err != nil {
				t.Fatal(err)
			}
			if !vec.EqualTol(back, q, 1e-9) {
				t.Fatalf("d=%d: round trip %v -> %v", d, q, back)
			}
		}
	}
}

func TestBarycentricAtVertices(t *testing.T) {
	s := StandardSimplex(4)
	for i, v := range s.Vertices() {
		lam, err := s.Barycentric(v)
		if err != nil {
			t.Fatal(err)
		}
		for j, l := range lam {
			want := 0.0
			if j == i {
				want = 1.0
			}
			if math.Abs(l-want) > 1e-10 {
				t.Fatalf("vertex %d: λ[%d] = %v, want %v", i, j, l, want)
			}
		}
	}
}

func TestFromBarycentricLengthCheck(t *testing.T) {
	s := StandardSimplex(2)
	if _, err := s.FromBarycentric([]float64{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestVolume(t *testing.T) {
	// Standard simplex in R^d has volume 1/d!.
	for d := 1; d <= 6; d++ {
		s := StandardSimplex(d)
		fact := 1.0
		for k := 2; k <= d; k++ {
			fact *= float64(k)
		}
		if got := s.Volume(); math.Abs(got-1/fact) > 1e-12 {
			t.Errorf("d=%d: Volume = %v, want %v", d, got, 1/fact)
		}
	}
	// Degenerate simplex has zero volume.
	s, _ := NewSimplex([][]float64{{0, 0}, {1, 1}, {2, 2}})
	if got := s.Volume(); got != 0 {
		t.Errorf("degenerate Volume = %v", got)
	}
}

func TestSplitPartitionsVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []int{2, 3, 4, 6} {
		s := StandardSimplex(d)
		w := make([]float64, d+1)
		for i := range w {
			w[i] = 0.1 + rng.Float64()
		}
		p, err := s.RandomInteriorPoint(w)
		if err != nil {
			t.Fatal(err)
		}
		children, replaced, mu, err := s.Split(p, DefaultTol)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if len(children) != d+1 {
			t.Fatalf("d=%d: interior split should give %d children, got %d", d, d+1, len(children))
		}
		if len(replaced) != len(children) {
			t.Fatalf("replaced list mismatch")
		}
		var total float64
		for _, c := range children {
			total += c.Volume()
		}
		if math.Abs(total-s.Volume()) > 1e-9 {
			t.Errorf("d=%d: child volumes sum %v, parent %v", d, total, s.Volume())
		}
		if math.Abs(vec.Sum(mu)-1) > 1e-9 {
			t.Errorf("d=%d: Σμ = %v", d, vec.Sum(mu))
		}
	}
}

func TestSplitChildVolumeProportionalToMu(t *testing.T) {
	s := StandardSimplex(3)
	p := []float64{0.2, 0.3, 0.1} // interior, μ = (0.4, 0.2, 0.3, 0.1)
	children, replaced, mu, err := s.Split(p, DefaultTol)
	if err != nil {
		t.Fatal(err)
	}
	parentVol := s.Volume()
	for i, c := range children {
		want := mu[replaced[i]] * parentVol
		if math.Abs(c.Volume()-want) > 1e-12 {
			t.Errorf("child %d: volume %v, want μ_h·V = %v", i, c.Volume(), want)
		}
	}
}

func TestSplitRejectsExteriorAndVertexPoints(t *testing.T) {
	s := StandardSimplex(2)
	if _, _, _, err := s.Split([]float64{0.9, 0.9}, DefaultTol); err == nil {
		t.Error("exterior point should not split")
	}
	if _, _, _, err := s.Split([]float64{0, 0}, DefaultTol); err == nil {
		t.Error("vertex point should not split")
	}
	if _, _, _, err := s.Split([]float64{1, 0}, DefaultTol); err == nil {
		t.Error("vertex point should not split")
	}
}

func TestSplitFacetPointSkipsDegenerateChild(t *testing.T) {
	s := StandardSimplex(2)
	// Point on the edge between v1=(1,0) and v2=(0,1): μ0 = 0.
	p := []float64{0.5, 0.5}
	children, replaced, _, err := s.Split(p, DefaultTol)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("facet split should give 2 children, got %d", len(children))
	}
	for _, h := range replaced {
		if h == 0 {
			t.Error("child replacing v0 should have been skipped (degenerate)")
		}
	}
	var total float64
	for _, c := range children {
		total += c.Volume()
	}
	if math.Abs(total-s.Volume()) > 1e-12 {
		t.Errorf("facet split children volumes %v != parent %v", total, s.Volume())
	}
}

func TestChildBarycentricMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range []int{2, 3, 5, 10} {
		s := StandardSimplex(d)
		w := make([]float64, d+1)
		for i := range w {
			w[i] = 0.2 + rng.Float64()
		}
		p, err := s.RandomInteriorPoint(w)
		if err != nil {
			t.Fatal(err)
		}
		children, replaced, mu, err := s.Split(p, DefaultTol)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.Float64() / float64(d)
			}
			lam, err := s.Barycentric(q)
			if err != nil {
				t.Fatal(err)
			}
			for ci, c := range children {
				h := replaced[ci]
				nu, ok := ChildBarycentric(lam, mu, h, DefaultTol)
				if !ok {
					t.Fatalf("d=%d: ChildBarycentric rejected non-degenerate child", d)
				}
				direct, err := c.Barycentric(q)
				if err != nil {
					t.Fatal(err)
				}
				if !vec.EqualTol(nu, direct, 1e-8) {
					t.Fatalf("d=%d child %d: incremental %v vs direct %v", d, h, nu, direct)
				}
			}
		}
	}
}

func TestChildBarycentricExactlyOneContainingChild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 4
	s := StandardSimplex(d)
	p, err := s.RandomInteriorPoint(vec.Ones(d + 1))
	if err != nil {
		t.Fatal(err)
	}
	_, replaced, mu, err := s.Split(p, DefaultTol)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		// Random interior point of the parent.
		w := make([]float64, d+1)
		for i := range w {
			w[i] = 0.05 + rng.Float64()
		}
		q, err := s.RandomInteriorPoint(w)
		if err != nil {
			t.Fatal(err)
		}
		lam, err := s.Barycentric(q)
		if err != nil {
			t.Fatal(err)
		}
		containing := 0
		for _, h := range replaced {
			nu, ok := ChildBarycentric(lam, mu, h, DefaultTol)
			if ok && AllNonNegative(nu, DefaultTol) {
				containing++
			}
		}
		if containing < 1 {
			t.Fatalf("trial %d: no child contains interior point %v", trial, q)
		}
		// Points on internal boundaries may be claimed by several children;
		// random interior points should almost always be claimed by one.
		if containing > 2 {
			t.Fatalf("trial %d: %d children claim point %v", trial, containing, q)
		}
	}
}

func TestChildBarycentricDegenerateAndBadInput(t *testing.T) {
	lam := []float64{0.3, 0.3, 0.4}
	mu := []float64{0, 0.5, 0.5}
	if _, ok := ChildBarycentric(lam, mu, 0, DefaultTol); ok {
		t.Error("degenerate child should be rejected")
	}
	if _, ok := ChildBarycentric(lam, mu, 5, DefaultTol); ok {
		t.Error("out-of-range h should be rejected")
	}
	if _, ok := ChildBarycentric([]float64{1}, mu, 1, DefaultTol); ok {
		t.Error("length mismatch should be rejected")
	}
}

func TestCentroid(t *testing.T) {
	s := StandardSimplex(2)
	c := s.Centroid()
	want := []float64{1.0 / 3.0, 1.0 / 3.0}
	if !vec.EqualTol(c, want, 1e-12) {
		t.Errorf("Centroid = %v, want %v", c, want)
	}
	if !s.Contains(c, DefaultTol) {
		t.Error("centroid must be inside")
	}
}

func TestRandomInteriorPointValidation(t *testing.T) {
	s := StandardSimplex(2)
	if _, err := s.RandomInteriorPoint([]float64{1, 1}); err == nil {
		t.Error("wrong weight count should error")
	}
	if _, err := s.RandomInteriorPoint([]float64{1, -1, 1}); err == nil {
		t.Error("non-positive weight should error")
	}
	p, err := s.RandomInteriorPoint([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(p, DefaultTol) {
		t.Error("interior point must be contained")
	}
}

func TestContainsBoundary(t *testing.T) {
	s := StandardSimplex(2)
	// Vertices and edge midpoints are boundary points: contained.
	for _, q := range [][]float64{{0, 0}, {1, 0}, {0, 1}, {0.5, 0}, {0, 0.5}, {0.5, 0.5}} {
		if !s.Contains(q, DefaultTol) {
			t.Errorf("boundary point %v should be contained", q)
		}
	}
	for _, q := range [][]float64{{-0.01, 0}, {1.01, 0}, {0.6, 0.6}} {
		if s.Contains(q, DefaultTol) {
			t.Errorf("exterior point %v should not be contained", q)
		}
	}
}

func TestHighDimensionalBarycentric31(t *testing.T) {
	// D = 31 is the paper's operating point; ensure the solve is stable.
	d := 31
	s := StandardSimplex(d)
	q := make([]float64, d)
	for i := range q {
		q[i] = 1 / float64(d+5)
	}
	lam, err := s.Barycentric(q)
	if err != nil {
		t.Fatal(err)
	}
	if !AllNonNegative(lam, DefaultTol) {
		t.Error("interior histogram point must have non-negative coordinates")
	}
	back, err := s.FromBarycentric(lam)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(back, q, 1e-9) {
		t.Error("31-dimensional round trip failed")
	}
}

// Property: the precomputed-LU solver reproduces the per-call solve
// bitwise — both run the same factorize-then-two-triangular-solves
// pipeline on the same matrix, so even rounding must agree.
func TestSolverMatchesBarycentric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{1, 2, 5, 15, 31} {
		s := StandardSimplex(d)
		solver, err := s.Solver()
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if solver.Dim() != d {
			t.Fatalf("d=%d: solver dim %d", d, solver.Dim())
		}
		dst := make([]float64, d+1)
		rhs := make([]float64, d+1)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.Float64() * 2 / float64(d)
			}
			want, err := s.Barycentric(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := solver.BarycentricInto(dst, rhs, q); err != nil {
				t.Fatal(err)
			}
			if !vec.Equal(dst, want) {
				t.Fatalf("d=%d: solver %v != direct %v", d, dst, want)
			}
		}
		// Malformed buffers are rejected, not sliced out of bounds.
		if err := solver.BarycentricInto(dst[:d], rhs, make([]float64, d)); err == nil {
			t.Error("short dst accepted")
		}
		if err := solver.BarycentricInto(dst, rhs, make([]float64, d+2)); err == nil {
			t.Error("long query accepted")
		}
	}
	// A degenerate simplex has no solver.
	if _, err := NewSimplex([][]float64{{0, 0}, {1, 1}, {2, 2}}); err != nil {
		t.Fatal(err)
	}
	degenerate := &Simplex{verts: [][]float64{{0, 0}, {1, 1}, {2, 2}}}
	if _, err := degenerate.Solver(); !errors.Is(err, ErrDegenerate) {
		t.Errorf("degenerate solver error = %v, want ErrDegenerate", err)
	}
}

// Property: ChildBarycentricInto matches the allocating variant and
// rejects aliasing-safe bad inputs the same way.
func TestChildBarycentricIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := 6
	s := StandardSimplex(d)
	p, err := s.RandomInteriorPoint([]float64{1, 2, 1, 3, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	mu, err := s.Barycentric(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.Float64() / float64(d)
		}
		lam, err := s.Barycentric(q)
		if err != nil {
			t.Fatal(err)
		}
		for h := 0; h <= d; h++ {
			want, okWant := ChildBarycentric(lam, mu, h, DefaultTol)
			nu := make([]float64, len(lam))
			ok := ChildBarycentricInto(nu, lam, mu, h, DefaultTol)
			if ok != okWant {
				t.Fatalf("h=%d: ok %v != %v", h, ok, okWant)
			}
			if ok && !vec.Equal(nu, want) {
				t.Fatalf("h=%d: %v != %v", h, nu, want)
			}
		}
	}
	if ChildBarycentricInto(make([]float64, d), nil, mu, 0, DefaultTol) {
		t.Error("mismatched lam accepted")
	}
	if ChildBarycentricInto(make([]float64, d+1), mu, mu, -1, DefaultTol) {
		t.Error("negative index accepted")
	}
}
