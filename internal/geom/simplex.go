// Package geom implements the simplex geometry underlying the Simplex Tree
// of FeedbackBypass (§4 of the paper): barycentric coordinates, containment
// tests, volumes, the D+1-way split used by the incremental triangulation,
// and the O(D) incremental barycentric descent that makes tree lookups
// cheap.
package geom

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// DefaultTol is the geometric tolerance used for containment and
// degeneracy decisions when callers have no better choice. Query points in
// this reproduction are normalized histograms with components in [0,1], so
// an absolute tolerance near 1e-9 comfortably absorbs the rounding of the
// barycentric solves without ever misclassifying interior points.
const DefaultTol = 1e-9

// ErrDegenerate is returned when an operation meets a simplex with (near-)
// zero volume.
var ErrDegenerate = errors.New("geom: degenerate simplex")

// Simplex is a D-dimensional simplex described by its D+1 vertices, each a
// point in R^D. The vertex slices are owned by the simplex; callers must
// not mutate them after construction.
type Simplex struct {
	verts [][]float64
}

// NewSimplex builds a simplex from D+1 vertices of dimension D. The
// vertices are used directly (not copied).
func NewSimplex(vertices [][]float64) (*Simplex, error) {
	if len(vertices) == 0 {
		return nil, errors.New("geom: simplex needs at least one vertex")
	}
	d := len(vertices) - 1
	for i, v := range vertices {
		if len(v) != d {
			return nil, fmt.Errorf("geom: vertex %d has dimension %d, want %d (for %d vertices)", i, len(v), d, len(vertices))
		}
	}
	return &Simplex{verts: vertices}, nil
}

// StandardSimplex returns the standard simplex in R^d with vertices
// 0, e1, …, ed. When features are normalized histograms with the last bin
// dropped (§4.1 of the paper), this simplex IS the entire query domain.
func StandardSimplex(d int) *Simplex {
	verts := make([][]float64, d+1)
	verts[0] = make([]float64, d)
	for i := 1; i <= d; i++ {
		v := make([]float64, d)
		v[i-1] = 1
		verts[i] = v
	}
	return &Simplex{verts: verts}
}

// CoveringSimplex returns the scaled corner simplex with vertices
// 0, d·e1, …, d·ed, which covers the unit hypercube [0,1]^d (§4.1 of the
// paper: any x with Σx_i ≤ d and x_i ≥ 0 is inside).
func CoveringSimplex(d int) *Simplex {
	verts := make([][]float64, d+1)
	verts[0] = make([]float64, d)
	for i := 1; i <= d; i++ {
		v := make([]float64, d)
		v[i-1] = float64(d)
		verts[i] = v
	}
	return &Simplex{verts: verts}
}

// Dim returns the dimensionality D of the simplex.
func (s *Simplex) Dim() int { return len(s.verts) - 1 }

// Vertex returns the i-th vertex. The returned slice must not be mutated.
func (s *Simplex) Vertex(i int) []float64 { return s.verts[i] }

// Vertices returns the vertex list. It must not be mutated.
func (s *Simplex) Vertices() [][]float64 { return s.verts }

// Barycentric computes the barycentric coordinates λ of q with respect to
// the simplex: the unique vector with Σλ_i = 1 and Σλ_i·v_i = q. It solves
// a (D+1)×(D+1) linear system (O(D³)); the Simplex Tree calls this once at
// the root and then descends with the O(D) ChildBarycentric update.
func (s *Simplex) Barycentric(q []float64) ([]float64, error) {
	d := s.Dim()
	if len(q) != d {
		return nil, fmt.Errorf("geom: point has dimension %d, want %d", len(q), d)
	}
	n := d + 1
	a := vec.NewMatrix(n, n)
	b := make([]float64, n)
	// First row encodes Σλ_i = 1.
	for j := 0; j < n; j++ {
		a.Set(0, j, 1)
	}
	b[0] = 1
	// Remaining rows encode Σλ_j·v_j[i] = q[i].
	for i := 0; i < d; i++ {
		for j := 0; j < n; j++ {
			a.Set(i+1, j, s.verts[j][i])
		}
		b[i+1] = q[i]
	}
	lam, err := vec.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegenerate, err)
	}
	return lam, nil
}

// BarycentricSolver solves the barycentric system of one fixed simplex
// repeatedly without re-factorizing or allocating: the (D+1)×(D+1)
// coefficient matrix depends only on the vertices, so its LU factorization
// is computed once and every query costs two triangular solves (O(D²)).
// The Simplex Tree builds one solver for its root simplex at construction.
//
// A solver is immutable after construction and safe for concurrent use;
// callers supply the per-call output and scratch buffers.
type BarycentricSolver struct {
	lu *vec.LU
	n  int // D+1
}

// Solver factorizes the simplex's barycentric system. It returns
// ErrDegenerate (wrapped) for simplices whose system is singular.
func (s *Simplex) Solver() (*BarycentricSolver, error) {
	d := s.Dim()
	n := d + 1
	a := vec.NewMatrix(n, n)
	// First row encodes Σλ_i = 1, the rest Σλ_j·v_j[i] = q[i].
	for j := 0; j < n; j++ {
		a.Set(0, j, 1)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < n; j++ {
			a.Set(i+1, j, s.verts[j][i])
		}
	}
	lu, err := vec.Factorize(a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegenerate, err)
	}
	return &BarycentricSolver{lu: lu, n: n}, nil
}

// Dim returns the simplex dimensionality D the solver was built for.
func (bs *BarycentricSolver) Dim() int { return bs.n - 1 }

// BarycentricInto computes the barycentric coordinates of q into dst using
// rhs as scratch for the right-hand side. dst and rhs must have length D+1
// and must not alias each other; q must have length D. No allocation is
// performed.
func (bs *BarycentricSolver) BarycentricInto(dst, rhs, q []float64) error {
	d := bs.n - 1
	if len(q) != d {
		return fmt.Errorf("geom: point has dimension %d, want %d", len(q), d)
	}
	if len(dst) != bs.n || len(rhs) != bs.n {
		return fmt.Errorf("geom: dst/rhs have length %d/%d, want %d", len(dst), len(rhs), bs.n)
	}
	rhs[0] = 1
	copy(rhs[1:], q)
	return bs.lu.SolveInto(dst, rhs)
}

// FromBarycentric maps barycentric coordinates λ back to a point Σλ_i·v_i.
func (s *Simplex) FromBarycentric(lam []float64) ([]float64, error) {
	if len(lam) != len(s.verts) {
		return nil, fmt.Errorf("geom: got %d coordinates, want %d", len(lam), len(s.verts))
	}
	out := make([]float64, s.Dim())
	for i, l := range lam {
		vec.Axpy(out, l, s.verts[i])
	}
	return out, nil
}

// Contains reports whether q lies inside the simplex (boundary included),
// using tolerance tol on the barycentric coordinates. It returns false for
// degenerate simplices.
func (s *Simplex) Contains(q []float64, tol float64) bool {
	lam, err := s.Barycentric(q)
	if err != nil {
		return false
	}
	return AllNonNegative(lam, tol)
}

// AllNonNegative reports whether every coordinate is ≥ -tol.
func AllNonNegative(lam []float64, tol float64) bool {
	for _, l := range lam {
		if l < -tol {
			return false
		}
	}
	return true
}

// Volume returns the D-dimensional volume of the simplex:
// |det(v1−v0, …, vD−v0)| / D!.
func (s *Simplex) Volume() float64 {
	d := s.Dim()
	if d == 0 {
		return 0
	}
	m := vec.NewMatrix(d, d)
	for j := 1; j <= d; j++ {
		for i := 0; i < d; i++ {
			m.Set(i, j-1, s.verts[j][i]-s.verts[0][i])
		}
	}
	det := math.Abs(vec.Det(m))
	fact := 1.0
	for k := 2; k <= d; k++ {
		fact *= float64(k)
	}
	return det / fact
}

// Split decomposes the simplex around the interior point p into up to D+1
// children: child h keeps every vertex except vertex h, which is replaced
// by p (§4.1 of the paper). Children whose barycentric weight μ_h is below
// tol would be degenerate (p lies on the facet opposite vertex h) and are
// skipped; the remaining children still cover the simplex. It returns the
// children, the index of the replaced vertex for each child, and the
// barycentric coordinates of p.
//
// An error is reported when p lies outside the simplex or coincides with a
// vertex (every child would be degenerate or the decomposition would not
// be a partition).
func (s *Simplex) Split(p []float64, tol float64) (children []*Simplex, replaced []int, mu []float64, err error) {
	mu, err = s.Barycentric(p)
	if err != nil {
		return nil, nil, nil, err
	}
	if !AllNonNegative(mu, tol) {
		return nil, nil, nil, fmt.Errorf("geom: split point lies outside the simplex (μ = %v)", mu)
	}
	// A split point equal to a vertex produces no valid children.
	positive := 0
	for _, m := range mu {
		if m > tol {
			positive++
		}
	}
	if positive <= 1 {
		return nil, nil, nil, fmt.Errorf("geom: split point coincides with a vertex (μ = %v)", mu)
	}
	for h := range s.verts {
		if mu[h] <= tol {
			continue // degenerate child: p lies on the facet opposite vertex h
		}
		childVerts := make([][]float64, len(s.verts))
		copy(childVerts, s.verts)
		childVerts[h] = p
		children = append(children, &Simplex{verts: childVerts})
		replaced = append(replaced, h)
	}
	return children, replaced, mu, nil
}

// ChildBarycentric converts the barycentric coordinates lam of a point q
// with respect to a parent simplex into its coordinates with respect to
// child h of a split at a point with parent-coordinates mu. Vertex h of
// the child is the split point; all other vertices are shared with the
// parent. The update costs O(D):
//
//	ν_h = λ_h / μ_h        (weight on the split point)
//	ν_j = λ_j − ν_h·μ_j    (j ≠ h)
//
// ok is false when μ_h ≤ tol (the child is degenerate).
func ChildBarycentric(lam, mu []float64, h int, tol float64) (nu []float64, ok bool) {
	if h < 0 || h >= len(mu) || len(lam) != len(mu) {
		return nil, false
	}
	nu = make([]float64, len(lam))
	if !ChildBarycentricInto(nu, lam, mu, h, tol) {
		return nil, false
	}
	return nu, true
}

// ChildBarycentricInto is the allocation-free variant of ChildBarycentric:
// it writes the child coordinates into nu, which must have length len(lam)
// and must not alias lam or mu. ok is false when the child is degenerate
// (μ_h ≤ tol) or the inputs are malformed, in which case nu is untouched.
func ChildBarycentricInto(nu, lam, mu []float64, h int, tol float64) bool {
	if h < 0 || h >= len(mu) || len(lam) != len(mu) || len(nu) != len(lam) {
		return false
	}
	if mu[h] <= tol {
		return false
	}
	w := lam[h] / mu[h]
	for j := range lam {
		if j == h {
			nu[j] = w
		} else {
			nu[j] = lam[j] - w*mu[j]
		}
	}
	return true
}

// Centroid returns the barycenter of the simplex.
func (s *Simplex) Centroid() []float64 {
	d := s.Dim()
	out := make([]float64, d)
	for _, v := range s.verts {
		vec.AddInPlace(out, v)
	}
	vec.ScaleInPlace(out, 1/float64(len(s.verts)))
	return out
}

// RandomInteriorPoint returns a point sampled from the simplex using the
// given barycentric weights, which must be positive and are normalized
// internally. It is primarily a test helper for generating interior
// points deterministically.
func (s *Simplex) RandomInteriorPoint(weights []float64) ([]float64, error) {
	if len(weights) != len(s.verts) {
		return nil, fmt.Errorf("geom: got %d weights, want %d", len(weights), len(s.verts))
	}
	var sum float64
	for _, w := range weights {
		if w <= 0 {
			return nil, errors.New("geom: interior point weights must be positive")
		}
		sum += w
	}
	lam := vec.Scale(weights, 1/sum)
	return s.FromBarycentric(lam)
}
