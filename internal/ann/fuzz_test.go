package ann

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// fuzzSeedImage builds a tiny valid FBIX image for the fuzz corpus.
func fuzzSeedImage(tb testing.TB, quant Quant) []byte {
	tb.Helper()
	rows := [][]float64{
		{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {1, 1, 1}, {0, 2, 4}, {9, 9, 9},
	}
	b, err := store.FromRows(rows)
	if err != nil {
		tb.Fatal(err)
	}
	x, err := Build(b, Options{NList: 2, Quant: quant, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "seed.fbix")
	if err := WriteFBIX(path, x); err != nil {
		tb.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzFBIX is the parse-hardening gate of the sidecar format: any input
// whatsoever either decodes into a structurally valid index or returns
// an error wrapping store.ErrCorrupt — never a panic, never an index
// violating the posting-permutation invariants, and (by construction of
// DecodeFBIX, which checks the exact size before allocating sections)
// never an allocation beyond the input's own size. The committed seed
// corpus under testdata/fuzz/FuzzFBIX covers both quantizations, a
// truncation, and a bit flip.
func FuzzFBIX(f *testing.F) {
	good := fuzzSeedImage(f, QuantF32)
	f.Add(good)
	f.Add(fuzzSeedImage(f, QuantI8))
	f.Add(good[:len(good)-5])
	flipped := append([]byte(nil), good...)
	flipped[fbixHeaderPage+17] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("FBIX"))
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := DecodeFBIX(data)
		if err != nil {
			if !errors.Is(err, store.ErrCorrupt) {
				t.Fatalf("DecodeFBIX error does not wrap store.ErrCorrupt: %v", err)
			}
			return
		}
		// A successful decode must satisfy the structural invariants the
		// search paths index by without bounds checks failing.
		if x.n <= 0 || x.dim <= 0 || x.nlist <= 0 || len(x.ids) != x.n {
			t.Fatalf("decoded index has implausible shape n=%d dim=%d nlist=%d", x.n, x.dim, x.nlist)
		}
		if err := x.validatePostings(); err != nil {
			t.Fatalf("decoded index fails posting validation: %v", err)
		}
	})
}
