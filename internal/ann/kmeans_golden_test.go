// Golden centroid test, amd64-only: the determinism contract in
// kmeans.go pins the accumulation order, but the Go compiler on arm64
// may contract a*b+c into a fused multiply-add, which rounds once where
// amd64 rounds twice — the bits of the trained centroids are therefore
// per-architecture. The double-build determinism test covers every
// platform; this golden hash additionally pins amd64 against regressions
// in the training pipeline itself (PRNG stream, seeding walk, Lloyd
// update order).

//go:build amd64

package ann

import (
	"hash/fnv"
	"math"
	"testing"
)

func TestKMeansGoldenAMD64(t *testing.T) {
	rng := newTestRNG(2001)
	rows := clusteredRows(800, 6, 5, rng)
	b := backendFor(t, rows)
	trainRNG := &splitmix64{s: 42}
	sample := trainSample(800, 512, trainRNG)
	centroids := trainKMeans(b, sample, 16, 10, trainRNG)

	h := fnv.New64a()
	var buf [8]byte
	for _, v := range centroids {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	const want = uint64(0x07433af546b96a9b)
	if got := h.Sum64(); got != want {
		t.Fatalf("k-means golden hash = %016x, want %016x — the deterministic training pipeline changed", got, want)
	}
}
