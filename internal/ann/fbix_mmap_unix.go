// Memory-mapped FBIX open path, gated exactly like the store package's
// FBMX mapping: unix-like platforms with a little-endian word order,
// where the file's centroid, posting and slab sections can be viewed in
// place. Every section is written zero-padded to an 8-byte boundary of a
// page-aligned mapping, so all views are naturally aligned.

//go:build (linux || darwin || freebsd || netbsd || openbsd || dragonfly) && (amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle)

package ann

import (
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"unsafe"

	"repro/internal/store"
)

// OpenFBIX opens the FBIX sidecar at path as a read-only file mapping:
// the quantized probe slab is served straight from the page cache, so a
// restart costs no retraining and no heap proportional to the index.
// Unlike the collection mapping, the payload checksum is verified
// eagerly — an index is consulted on every query and a latent corruption
// would silently skew recall rather than fail loudly. The returned index
// is unbound: call Bind with the collection before searching, and Close
// when done. All format failures wrap store.ErrCorrupt; a missing file
// satisfies errors.Is(err, os.ErrNotExist).
func OpenFBIX(path string) (*Index, error) {
	//fbvet:ok mmap requires a real *os.File descriptor; read-only open outside the faultfs crash schedules
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() < fbixHeaderPage {
		return nil, fmt.Errorf("%w: FBIX file %s is %d bytes, want at least the %d-byte header page", store.ErrCorrupt, path, info.Size(), fbixHeaderPage)
	}
	var hdr [fbixHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("ann: reading FBIX header of %s: %w", path, err)
	}
	x, l, dataCRC, err := parseFBIXHeader(hdr[:], info.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	mapped, err := syscall.Mmap(int(f.Fd()), 0, int(info.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("ann: mmap %s: %w", path, err)
	}
	fail := func(err error) (*Index, error) {
		_ = syscall.Munmap(mapped)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	payload := mapped[fbixHeaderPage:]
	if got := crc32.ChecksumIEEE(payload); got != dataCRC {
		return fail(fmt.Errorf("%w: FBIX payload checksum mismatch (stored %08x, computed %08x)", store.ErrCorrupt, dataCRC, got))
	}
	viewF64 := func(off uint64, count int) []float64 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&payload[off])), count)
	}
	viewI32 := func(off uint64, count int) []int32 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&payload[off])), count)
	}
	x.centroids = viewF64(l.centroids, x.nlist*x.dim)
	x.counts = viewI32(l.counts, x.nlist)
	x.ids = viewI32(l.ids, x.n)
	switch x.quant {
	case QuantI8:
		x.scale = viewF64(l.scale, x.dim)
		x.offset = viewF64(l.offset, x.dim)
		x.slab8 = unsafe.Slice((*int8)(unsafe.Pointer(&payload[l.slab])), x.n*x.dim)
	default:
		x.slab32 = unsafe.Slice((*float32)(unsafe.Pointer(&payload[l.slab])), x.n*x.dim)
	}
	if err := x.validatePostings(); err != nil {
		return fail(err)
	}
	x.close = func() error { return syscall.Munmap(mapped) }
	return x, nil
}
