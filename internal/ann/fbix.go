package ann

// FBIX is the on-disk form of an IVF index: a sidecar next to a
// collection's FBMX file, carrying everything Build computed — coarse
// centroids, posting lists, and the quantized probe slab — so a server
// restart (or another process) loads the index instead of retraining.
// It follows the FBMX discipline exactly: a page-aligned CRC-headered
// image, written atomically through the persist.FS seam (tmp + fsync +
// rename + directory fsync), parsed defensively (any failure wraps
// store.ErrCorrupt, never a panic, never an allocation beyond the
// input's own size), and opened via mmap where the platform allows.
//
// Format (little-endian):
//
//	magic    [4]byte  "FBIX"
//	version  uint32   currently 1
//	n        uint64   rows in the indexed collection
//	dim      uint64   row dimensionality
//	nlist    uint64   partition count
//	quant    uint32   0 = f32, 1 = i8
//	nprobe   uint32   default probe count
//	seed     uint64   training seed (int64 bits)
//	rerank   uint32   rerank factor
//	reserved uint32   zero
//	dataCRC  uint32   IEEE checksum of the whole payload
//	hdrCRC   uint32   IEEE checksum of the 60 header bytes before it
//	pad      zeros to fbixHeaderPage (4096)
//
// followed by the payload: sections in fixed order, each zero-padded to
// an 8-byte boundary so every mmap view is naturally aligned —
//
//	centroids nlist×dim float64
//	counts    nlist int32   posting-list lengths
//	ids       n int32       row ids grouped by partition, a permutation
//	                        of 0..n-1, ascending within each partition
//	scale     dim float64   (QuantI8 only)
//	offset    dim float64   (QuantI8 only)
//	slab      n×dim float32 or int8, posting order

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"

	"repro/internal/persist"
	"repro/internal/store"
)

var fbixMagic = [4]byte{'F', 'B', 'I', 'X'}

// FBIXVersion is the current index file format version.
const FBIXVersion = 1

// fbixHeaderPage is the page-aligned size of the header block; the
// payload begins at this offset.
const fbixHeaderPage = 4096

// fbixHeaderSize is the meaningful prefix of the header block.
const fbixHeaderSize = 64

// maxFBIXSide bounds n, dim and nlist read from untrusted files;
// maxFBIXElems additionally bounds n×dim so every section size fits a
// uint64 with no overflow anywhere in the layout arithmetic.
const (
	maxFBIXSide  = 1 << 31
	maxFBIXElems = 1 << 40
)

// fbixLayout holds the byte offsets of each payload section (relative to
// the payload start) and the total payload size.
type fbixLayout struct {
	centroids, counts, ids, scale, offset, slab, total uint64
}

func pad8(v uint64) uint64 { return (v + 7) &^ 7 }

// layoutFor computes the section layout for a validated shape. Callers
// guarantee n, dim, nlist < maxFBIXSide and n*dim < maxFBIXElems, so no
// term can overflow.
func layoutFor(n, dim, nlist uint64, quant Quant) fbixLayout {
	var l fbixLayout
	l.centroids = 0
	l.counts = l.centroids + 8*nlist*dim
	l.ids = l.counts + pad8(4*nlist)
	next := l.ids + pad8(4*n)
	if quant == QuantI8 {
		l.scale = next
		l.offset = l.scale + 8*dim
		next = l.offset + 8*dim
	}
	l.slab = next
	switch quant {
	case QuantI8:
		l.total = l.slab + pad8(n*dim)
	default:
		l.total = l.slab + pad8(4*n*dim)
	}
	return l
}

// WriteFBIX writes the index to path as an FBIX sidecar file,
// atomically.
func WriteFBIX(path string, x *Index) error {
	return WriteFBIXFS(nil, path, x)
}

// WriteFBIXFS is WriteFBIX with every filesystem operation routed
// through fs (nil means the real filesystem) — the fault-injection seam
// for index writes.
func WriteFBIXFS(fsys persist.FS, path string, x *Index) error {
	if x == nil || x.n == 0 || len(x.centroids) == 0 {
		return fmt.Errorf("ann: cannot write empty index to %s", path)
	}
	fsys = persist.OrOS(fsys)
	tmp := path + ".tmp"
	f, err := persist.CreateFile(fsys, tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	// Same single-pass shape as WriteFBMXFS: reserve the header page,
	// stream the payload sections while accumulating their checksum, then
	// drop the finalized header in at offset 0.
	hdr := make([]byte, fbixHeaderPage)
	if _, err := f.Write(hdr); err != nil {
		return cleanup(err)
	}
	crc := crc32.NewIEEE()
	w := func(b []byte) error {
		crc.Write(b)
		_, err := f.Write(b)
		return err
	}
	pad := func(written uint64) error {
		if rem := pad8(written) - written; rem != 0 {
			return w(make([]byte, rem))
		}
		return nil
	}
	writeF64 := func(vals []float64) error {
		buf := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		return w(buf)
	}
	writeI32 := func(vals []int32) error {
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if err := w(buf); err != nil {
			return err
		}
		return pad(uint64(len(buf)))
	}
	if err := writeF64(x.centroids); err != nil {
		return cleanup(err)
	}
	if err := writeI32(x.counts); err != nil {
		return cleanup(err)
	}
	if err := writeI32(x.ids); err != nil {
		return cleanup(err)
	}
	switch x.quant {
	case QuantI8:
		if err := writeF64(x.scale); err != nil {
			return cleanup(err)
		}
		if err := writeF64(x.offset); err != nil {
			return cleanup(err)
		}
		buf := make([]byte, len(x.slab8))
		for i, v := range x.slab8 {
			buf[i] = byte(v)
		}
		if err := w(buf); err != nil {
			return cleanup(err)
		}
		if err := pad(uint64(len(buf))); err != nil {
			return cleanup(err)
		}
	default:
		buf := make([]byte, 4*len(x.slab32))
		for i, v := range x.slab32 {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if err := w(buf); err != nil {
			return cleanup(err)
		}
		if err := pad(uint64(len(buf))); err != nil {
			return cleanup(err)
		}
	}
	copy(hdr[0:4], fbixMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], FBIXVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(x.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(x.dim))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(x.nlist))
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(x.quant))
	binary.LittleEndian.PutUint32(hdr[36:40], uint32(x.nprobe))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(x.seed))
	binary.LittleEndian.PutUint32(hdr[48:52], uint32(x.rerank))
	binary.LittleEndian.PutUint32(hdr[52:56], 0)
	binary.LittleEndian.PutUint32(hdr[56:60], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[60:64], crc32.ChecksumIEEE(hdr[:60]))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// parseFBIXHeader validates the header block of an FBIX image, returning
// a skeleton Index carrying the decoded parameters (no payload sections
// yet) plus the layout and payload checksum. size is the total file (or
// buffer) length, checked for an exact match against the layout before
// any caller allocates. All failures wrap store.ErrCorrupt.
func parseFBIXHeader(data []byte, size int64) (*Index, fbixLayout, uint32, error) {
	fail := func(format string, args ...any) (*Index, fbixLayout, uint32, error) {
		return nil, fbixLayout{}, 0, fmt.Errorf("%w: "+format, append([]any{store.ErrCorrupt}, args...)...)
	}
	if len(data) < fbixHeaderSize {
		return fail("FBIX header is %d bytes, want at least %d", len(data), fbixHeaderSize)
	}
	if [4]byte(data[0:4]) != fbixMagic {
		return fail("bad FBIX magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FBIXVersion {
		return fail("unsupported FBIX version %d", v)
	}
	if want, got := binary.LittleEndian.Uint32(data[60:64]), crc32.ChecksumIEEE(data[:60]); want != got {
		return fail("FBIX header checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	un := binary.LittleEndian.Uint64(data[8:16])
	udim := binary.LittleEndian.Uint64(data[16:24])
	unlist := binary.LittleEndian.Uint64(data[24:32])
	if un == 0 || udim == 0 || unlist == 0 || un >= maxFBIXSide || udim >= maxFBIXSide || unlist > un {
		return fail("implausible FBIX shape n=%d dim=%d nlist=%d", un, udim, unlist)
	}
	if un*udim >= maxFBIXElems {
		return fail("implausible FBIX slab of %d elements", un*udim)
	}
	quant := Quant(binary.LittleEndian.Uint32(data[32:36]))
	if quant != QuantF32 && quant != QuantI8 {
		return fail("unknown FBIX quantization %d", uint32(quant))
	}
	nprobe := binary.LittleEndian.Uint32(data[36:40])
	rerank := binary.LittleEndian.Uint32(data[48:52])
	if nprobe == 0 || nprobe >= maxFBIXSide || rerank == 0 || rerank >= maxFBIXSide {
		return fail("implausible FBIX nprobe=%d rerank=%d", nprobe, rerank)
	}
	l := layoutFor(un, udim, unlist, quant)
	if size < fbixHeaderPage || uint64(size-fbixHeaderPage) != l.total {
		return fail("FBIX file is %d bytes, want %d for shape n=%d dim=%d nlist=%d quant=%s",
			size, uint64(fbixHeaderPage)+l.total, un, udim, unlist, quant)
	}
	x := &Index{
		n: int(un), dim: int(udim),
		nlist:  int(unlist),
		nprobe: int(nprobe),
		quant:  quant,
		seed:   int64(binary.LittleEndian.Uint64(data[40:48])),
		rerank: int(rerank),
	}
	return x, l, binary.LittleEndian.Uint32(data[56:60]), nil
}

// validatePostings checks the structural invariants the search paths
// rely on: non-negative counts summing to n, and ids forming a
// permutation of 0..n-1 that is ascending within each partition. Called
// with counts and ids populated; fills starts.
func (x *Index) validatePostings() error {
	var total uint64
	for c, cnt := range x.counts {
		if cnt < 0 {
			return fmt.Errorf("%w: FBIX partition %d has negative count %d", store.ErrCorrupt, c, cnt)
		}
		total += uint64(cnt)
	}
	if total != uint64(x.n) {
		return fmt.Errorf("%w: FBIX posting lists hold %d ids, want %d", store.ErrCorrupt, total, x.n)
	}
	x.buildStarts()
	seen := make([]uint64, (x.n+63)/64)
	for c := 0; c < x.nlist; c++ {
		prev := int32(-1)
		for pos := x.starts[c]; pos < x.starts[c+1]; pos++ {
			id := x.ids[pos]
			if id < 0 || int(id) >= x.n {
				return fmt.Errorf("%w: FBIX posting id %d out of range [0,%d)", store.ErrCorrupt, id, x.n)
			}
			if id <= prev {
				return fmt.Errorf("%w: FBIX partition %d posting list not ascending (%d after %d)", store.ErrCorrupt, c, id, prev)
			}
			prev = id
			if seen[id/64]&(1<<(uint(id)%64)) != 0 {
				return fmt.Errorf("%w: FBIX posting id %d appears twice", store.ErrCorrupt, id)
			}
			seen[id/64] |= 1 << (uint(id) % 64)
		}
	}
	return nil
}

// DecodeFBIX parses a complete FBIX image from memory into a fresh
// heap-resident Index, verifying both checksums and every structural
// invariant. The index is unbound: call Bind with the collection before
// searching. It is the portable open path and the fuzzing target: any
// input either decodes fully or returns an error wrapping
// store.ErrCorrupt — never a panic, never an allocation beyond the
// input's own size.
func DecodeFBIX(data []byte) (*Index, error) {
	if len(data) < fbixHeaderPage {
		return nil, fmt.Errorf("%w: FBIX image is %d bytes, want at least the %d-byte header page", store.ErrCorrupt, len(data), fbixHeaderPage)
	}
	x, l, dataCRC, err := parseFBIXHeader(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	payload := data[fbixHeaderPage:]
	if got := crc32.ChecksumIEEE(payload); got != dataCRC {
		return nil, fmt.Errorf("%w: FBIX payload checksum mismatch (stored %08x, computed %08x)", store.ErrCorrupt, dataCRC, got)
	}
	readF64 := func(off uint64, count int) []float64 {
		out := make([]float64, count)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8*uint64(i):]))
		}
		return out
	}
	readI32 := func(off uint64, count int) []int32 {
		out := make([]int32, count)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(payload[off+4*uint64(i):]))
		}
		return out
	}
	x.centroids = readF64(l.centroids, x.nlist*x.dim)
	x.counts = readI32(l.counts, x.nlist)
	x.ids = readI32(l.ids, x.n)
	switch x.quant {
	case QuantI8:
		x.scale = readF64(l.scale, x.dim)
		x.offset = readF64(l.offset, x.dim)
		x.slab8 = make([]int8, x.n*x.dim)
		for i := range x.slab8 {
			x.slab8[i] = int8(payload[l.slab+uint64(i)])
		}
	default:
		x.slab32 = make([]float32, x.n*x.dim)
		for i := range x.slab32 {
			x.slab32[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[l.slab+4*uint64(i):]))
		}
	}
	if err := x.validatePostings(); err != nil {
		return nil, err
	}
	return x, nil
}
