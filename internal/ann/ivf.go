// Package ann is the approximate retrieval tier: an IVF (inverted-file)
// first stage in front of the exact scan. Build trains k-means coarse
// centroids over the collection (deterministic under a pinned seed),
// groups row ids into per-partition posting lists, and quantizes the
// features into partition-ordered float32 or int8 slabs. A query probes
// the nprobe closest partitions through the quantized slab — 2–8x less
// memory bandwidth than the float64 scan — collects a shortlist, and
// exact-reranks it with the same squared-space early-abandoning kernels
// the flat scan uses, so served distances are bitwise the ones the exact
// path would report. Correctness gates: recall@k against the flat scan
// at the default nprobe, and bit-for-bit reproduction of the exact
// top-k when nprobe = nlist (every partition probed ⇒ every row exact-
// reranked ⇒ identical result lists, because the retained set under the
// canonical (distance, index) order does not depend on visit order).
package ann

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/distance"
	"repro/internal/knn"
	"repro/internal/obsv"
	"repro/internal/store"
	"repro/internal/vec"
)

// Quant selects the storage format of the probe slabs.
type Quant uint8

const (
	// QuantF32 stores rows as float32: half the bandwidth of the exact
	// scan, and probe sums are exactly the float64 sums of the rounded
	// values (widening is lossless).
	QuantF32 Quant = 0
	// QuantI8 stores rows as int8 with a per-dimension affine
	// (scale, offset) dequantization: an eighth of the bandwidth, at the
	// cost of coarser probe ranking (the exact rerank is unaffected).
	QuantI8 Quant = 1
)

func (q Quant) String() string {
	switch q {
	case QuantF32:
		return "f32"
	case QuantI8:
		return "i8"
	}
	return fmt.Sprintf("quant(%d)", uint8(q))
}

// ParseQuant parses the command-line names "f32" and "i8".
func ParseQuant(s string) (Quant, error) {
	switch s {
	case "f32":
		return QuantF32, nil
	case "i8":
		return QuantI8, nil
	}
	return 0, fmt.Errorf("ann: unknown quantization %q (want f32 or i8)", s)
}

// Defaults for zero-valued Options fields.
const (
	// DefaultIters bounds Lloyd iterations; k-means on clustered data
	// stabilizes in a handful of rounds.
	DefaultIters = 10
	// DefaultTrainRows caps the k-means sample: 32k rows keep training
	// O(seconds) at any collection size without hurting centroid quality
	// at the partition counts this tier uses.
	DefaultTrainRows = 32768
	// DefaultRerankFactor sizes the exact-rerank shortlist at factor×k.
	DefaultRerankFactor = 4
)

// Options configures Build. The zero value of every field selects a
// documented default.
type Options struct {
	// NList is the number of coarse partitions; 0 picks 4√n clamped to
	// [1, n].
	NList int
	// NProbe is the default number of partitions probed per query; 0
	// picks max(1, NList/8). Values ≥ NList select the exact path.
	NProbe int
	// Quant selects the probe-slab storage format (QuantF32 default).
	Quant Quant
	// Seed pins k-means training; equal seeds yield bit-identical
	// indexes.
	Seed int64
	// Iters bounds Lloyd iterations (DefaultIters when 0).
	Iters int
	// TrainRows caps the k-means sample (DefaultTrainRows when 0).
	TrainRows int
	// RerankFactor sizes the shortlist at RerankFactor×k
	// (DefaultRerankFactor when 0).
	RerankFactor int
}

// Index is an IVF index over a fixed collection. It implements
// knn.Searcher and knn.BatchSearcher; metrics without a squared-space
// kernel fall back to the embedded exact scan. Search is safe for
// concurrent use; SetNProbe is not.
type Index struct {
	b     store.Backend
	exact *knn.Scan

	n, dim int
	nlist  int
	nprobe int
	quant  Quant
	seed   int64
	rerank int

	centroids []float64 // nlist × dim
	counts    []int32   // posting-list lengths, per partition
	starts    []int     // prefix sums of counts, len nlist+1
	ids       []int32   // row ids grouped by partition, ascending within each

	slab32        []float32 // QuantF32: n × dim, posting order
	slab8         []int8    // QuantI8: n × dim, posting order
	scale, offset []float64 // QuantI8 per-dimension dequantization

	close func() error // releases mmap backing, nil when heap-resident

	// Optional instruments (see Observe). All are nil-safe atomics, so
	// the search path stays lock-free; the rerank clock read is skipped
	// entirely while rerankH is nil.
	nprobeH *obsv.Histogram // probe counts per query
	shortH  *obsv.Histogram // shortlist sizes handed to the exact rerank
	rerankH *obsv.Histogram // exact-rerank latency
}

// Observe registers the index's search instruments in reg with the given
// labels: probe counts, shortlist sizes, and exact-rerank latency. Call
// before serving; not safe to call concurrently with searches. A nil
// registry leaves the index uninstrumented (no clock reads on search).
func (x *Index) Observe(reg *obsv.Registry, labels ...obsv.Label) {
	if reg == nil {
		return
	}
	x.nprobeH = reg.Histogram("fb_ann_nprobe", "Partitions probed per ANN query.", obsv.CountBounds(), labels...)
	x.shortH = reg.Histogram("fb_ann_shortlist_size", "Candidates handed to the exact rerank per ANN query.", obsv.CountBounds(), labels...)
	x.rerankH = reg.Histogram("fb_ann_rerank_seconds", "Exact-rerank latency per ANN query.", obsv.LatencyBounds(), labels...)
}

// Build trains an IVF index over the backend's rows.
func Build(b store.Backend, opts Options) (*Index, error) {
	if b == nil || b.Len() == 0 || b.Dim() <= 0 {
		return nil, fmt.Errorf("ann: cannot index an empty collection")
	}
	n, dim := b.Len(), b.Dim()
	if opts.NList == 0 {
		opts.NList = 4 * int(math.Sqrt(float64(n)))
	}
	if opts.NList < 1 {
		opts.NList = 1
	}
	if opts.NList > n {
		return nil, fmt.Errorf("ann: nlist %d exceeds collection size %d", opts.NList, n)
	}
	if opts.NProbe == 0 {
		opts.NProbe = max(1, opts.NList/8)
	}
	if opts.NProbe < 0 {
		return nil, fmt.Errorf("ann: nprobe must be positive, got %d", opts.NProbe)
	}
	if opts.Iters == 0 {
		opts.Iters = DefaultIters
	}
	if opts.Iters < 0 {
		return nil, fmt.Errorf("ann: iters must be positive, got %d", opts.Iters)
	}
	if opts.TrainRows == 0 {
		opts.TrainRows = DefaultTrainRows
	}
	if opts.TrainRows < 1 {
		return nil, fmt.Errorf("ann: train rows must be positive, got %d", opts.TrainRows)
	}
	if opts.RerankFactor == 0 {
		opts.RerankFactor = DefaultRerankFactor
	}
	if opts.RerankFactor < 1 {
		return nil, fmt.Errorf("ann: rerank factor must be positive, got %d", opts.RerankFactor)
	}
	if opts.Quant != QuantF32 && opts.Quant != QuantI8 {
		return nil, fmt.Errorf("ann: unknown quantization %d", opts.Quant)
	}

	rng := &splitmix64{s: uint64(opts.Seed)}
	sample := trainSample(n, opts.TrainRows, rng)
	centroids := trainKMeans(b, sample, opts.NList, opts.Iters, rng)

	x := &Index{
		n: n, dim: dim,
		nlist:  opts.NList,
		nprobe: opts.NProbe,
		quant:  opts.Quant,
		seed:   opts.Seed,
		rerank: opts.RerankFactor,

		centroids: centroids,
		counts:    make([]int32, opts.NList),
	}
	// Assign every row to its nearest centroid and group ids by
	// partition; ascending iteration keeps ids ascending within each
	// posting list (part of the format contract).
	assign := make([]int32, n)
	for i := 0; i < n; i++ {
		c, _ := nearestCentroid(b.Row(i), centroids, dim)
		assign[i] = int32(c)
		x.counts[c]++
	}
	x.buildStarts()
	cursor := make([]int, opts.NList)
	copy(cursor, x.starts[:opts.NList])
	x.ids = make([]int32, n)
	for i := 0; i < n; i++ {
		c := assign[i]
		x.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	x.quantize(b)
	if err := x.Bind(b); err != nil {
		return nil, err
	}
	return x, nil
}

// buildStarts derives the posting-list prefix sums from counts.
func (x *Index) buildStarts() {
	x.starts = make([]int, x.nlist+1)
	for c, cnt := range x.counts {
		x.starts[c+1] = x.starts[c] + int(cnt)
	}
}

// quantize fills the probe slab in posting order.
func (x *Index) quantize(b store.Backend) {
	n, dim := x.n, x.dim
	switch x.quant {
	case QuantF32:
		x.slab32 = make([]float32, n*dim)
		for pos, id := range x.ids {
			row := b.Row(int(id))
			out := x.slab32[pos*dim : (pos+1)*dim]
			for j, v := range row {
				out[j] = float32(v)
			}
		}
	case QuantI8:
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for j := 0; j < dim; j++ {
			lo[j], hi[j] = math.Inf(1), math.Inf(-1)
		}
		for i := 0; i < n; i++ {
			for j, v := range b.Row(i) {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		x.scale = make([]float64, dim)
		x.offset = make([]float64, dim)
		for j := 0; j < dim; j++ {
			span := hi[j] - lo[j]
			if span > 0 && !math.IsInf(span, 0) {
				x.scale[j] = span / 255
			}
			x.offset[j] = lo[j] + 128*x.scale[j]
		}
		x.slab8 = make([]int8, n*dim)
		for pos, id := range x.ids {
			row := b.Row(int(id))
			out := x.slab8[pos*dim : (pos+1)*dim]
			for j, v := range row {
				if x.scale[j] == 0 {
					out[j] = -128 // dequantizes to lo[j] exactly
					continue
				}
				code := math.Round((v-lo[j])/x.scale[j]) - 128
				if code < -128 {
					code = -128
				}
				if code > 127 {
					code = 127
				}
				out[j] = int8(code)
			}
		}
	}
}

// Bind attaches the index to its feature backend (used by OpenFBIX and
// DecodeFBIX, which carry no collection data of their own). The backend
// must have exactly the shape the index was built over.
func (x *Index) Bind(b store.Backend) error {
	if b == nil || b.Len() != x.n || b.Dim() != x.dim {
		got := "nil"
		if b != nil {
			got = fmt.Sprintf("%dx%d", b.Len(), b.Dim())
		}
		return fmt.Errorf("ann: index over a %dx%d collection cannot bind backend %s", x.n, x.dim, got)
	}
	exact, err := knn.NewScanBackend(b)
	if err != nil {
		return err
	}
	x.b, x.exact = b, exact
	return nil
}

// Close releases any mmap backing. The index must not be used after.
func (x *Index) Close() error {
	if x.close == nil {
		return nil
	}
	c := x.close
	x.close = nil
	return c()
}

// Len implements knn.Searcher.
func (x *Index) Len() int { return x.n }

// Dim returns the collection dimensionality.
func (x *Index) Dim() int { return x.dim }

// NList returns the partition count.
func (x *Index) NList() int { return x.nlist }

// NProbe returns the active probe count.
func (x *Index) NProbe() int { return x.nprobe }

// Quantization returns the probe-slab storage format.
func (x *Index) Quantization() Quant { return x.quant }

// Seed returns the training seed.
func (x *Index) Seed() int64 { return x.seed }

// SetNProbe tunes the recall/latency trade-off (≥ nlist means every
// partition is probed, reproducing the exact scan bit for bit). Not safe
// to call concurrently with searches.
func (x *Index) SetNProbe(p int) error {
	if p < 1 {
		return fmt.Errorf("ann: nprobe must be positive, got %d", p)
	}
	x.nprobe = p
	return nil
}

// Describe names the retrieval tier for stats surfaces.
func (x *Index) Describe() string {
	return fmt.Sprintf("ivf(nlist=%d,nprobe=%d,quant=%s)", x.nlist, x.nprobe, x.quant)
}

// SlabBytes returns the probe-slab size in bytes — what a full-collection
// probe would stream, against 8×n×dim for the exact scan.
func (x *Index) SlabBytes() int64 {
	switch x.quant {
	case QuantI8:
		return int64(len(x.slab8))
	default:
		return 4 * int64(len(x.slab32))
	}
}

func (x *Index) check(q []float64, k int) error {
	if x.b == nil {
		return fmt.Errorf("ann: index is not bound to a collection")
	}
	if k <= 0 {
		return fmt.Errorf("ann: k must be positive, got %d", k)
	}
	if len(q) != x.dim {
		return fmt.Errorf("ann: query has dimension %d, want %d", len(q), x.dim)
	}
	return nil
}

// Search implements knn.Searcher: probe, shortlist, exact rerank.
// Metrics without a squared-space kernel are answered exactly by the
// embedded flat scan.
func (x *Index) Search(q []float64, k int, m distance.Metric) ([]knn.Result, error) {
	if err := x.check(q, k); err != nil {
		return nil, err
	}
	kern, ok := distance.KernelFor(m)
	if !ok {
		return x.exact.Search(q, k, m)
	}
	return x.searchKern(q, k, kern, x.nprobe), nil
}

// SearchNProbe is Search with an explicit probe count — the sweep entry
// point of the benchmark harness, bypassing the index default.
func (x *Index) SearchNProbe(q []float64, k int, m distance.Metric, nprobe int) ([]knn.Result, error) {
	if err := x.check(q, k); err != nil {
		return nil, err
	}
	if nprobe < 1 {
		return nil, fmt.Errorf("ann: nprobe must be positive, got %d", nprobe)
	}
	kern, ok := distance.KernelFor(m)
	if !ok {
		return x.exact.Search(q, k, m)
	}
	return x.searchKern(q, k, kern, nprobe), nil
}

func (x *Index) searchKern(q []float64, k int, kern distance.Kernel, nprobe int) []knn.Result {
	x.nprobeH.Observe(float64(nprobe))
	if nprobe >= x.nlist {
		return x.rerankRange(q, k, kern, 0, x.n)
	}
	probes := x.probeCentroids(q, kern, nprobe)
	short := x.shortlist(q, k, kern, probes)
	x.shortH.Observe(float64(len(short)))
	var t0 time.Time
	if x.rerankH != nil {
		// The wall clock never feeds a distance computation or result
		// ordering — it only times the rerank for the metrics plane.
		t0 = time.Now() //fbvet:ok observability: rerank latency histogram, no effect on kernel output
	}
	res := x.rerankShortlist(q, k, kern, short)
	if x.rerankH != nil {
		x.rerankH.ObserveSince(t0)
	}
	return res
}

// probeCentroids returns the nprobe partitions whose centroids are
// closest to q under the query metric, in ascending (squared distance,
// partition) order.
func (x *Index) probeCentroids(q []float64, kern distance.Kernel, nprobe int) []knn.Result {
	t := knn.NewTopK(nprobe)
	bound := math.Inf(1)
	for c := 0; c < x.nlist; c++ {
		s, abandoned := kern.SquaredAbandon(q, x.centroids[c*x.dim:(c+1)*x.dim], bound)
		if abandoned {
			continue
		}
		t.Offer(c, s)
		if b, ok := t.Bound(); ok {
			bound = b
		}
	}
	return t.Results()
}

// shortlist scans the probed partitions' quantized slab and keeps the
// rerankFactor×k best candidates by approximate squared distance. The
// result order — ascending (approximate distance, row id) — is
// deterministic and independent of the kernel dispatch tier (a full sum
// and a surviving abandoning sum are bitwise identical, and an abandoned
// candidate can never belong to the shortlist).
func (x *Index) shortlist(q []float64, k int, kern distance.Kernel, probes []knn.Result) []knn.Result {
	t := knn.NewTopK(x.rerank * k)
	bound := math.Inf(1)
	w := kern.Weights()
	for _, p := range probes {
		lo, hi := x.starts[p.Index], x.starts[p.Index+1]
		switch x.quant {
		case QuantF32:
			for pos := lo; pos < hi; pos++ {
				row := x.slab32[pos*x.dim : (pos+1)*x.dim]
				var s float64
				if w == nil {
					s = vec.SqDist32(q, row)
				} else {
					s = vec.SqDist32W(q, row, w)
				}
				if s <= bound {
					t.Offer(int(x.ids[pos]), s)
					if b, ok := t.Bound(); ok {
						bound = b
					}
				}
			}
		case QuantI8:
			for pos := lo; pos < hi; pos++ {
				row := x.slab8[pos*x.dim : (pos+1)*x.dim]
				var s float64
				var abandoned bool
				if w == nil {
					s, abandoned = sqDistI8(q, row, x.scale, x.offset, bound)
				} else {
					s, abandoned = sqDistI8W(q, row, x.scale, x.offset, w, bound)
				}
				if abandoned {
					continue
				}
				t.Offer(int(x.ids[pos]), s)
				if b, ok := t.Bound(); ok {
					bound = b
				}
			}
		}
	}
	return t.Results()
}

// rerankShortlist computes exact squared distances for the shortlist
// with the canonical early-abandoning kernel and returns the final
// top-k. Visiting candidates in ascending approximate order tightens the
// abandon bound quickly.
func (x *Index) rerankShortlist(q []float64, k int, kern distance.Kernel, short []knn.Result) []knn.Result {
	t := knn.NewTopK(k)
	bound := math.Inf(1)
	for _, cand := range short {
		s, abandoned := kern.SquaredAbandon(q, x.b.Row(cand.Index), bound)
		if abandoned {
			continue
		}
		t.Offer(cand.Index, s)
		if b, ok := t.Bound(); ok {
			bound = b
		}
	}
	return finishSquared(t.Results(), k)
}

// rerankRange exact-reranks every row id in posting positions [lo, hi) —
// with (0, n) this is the nprobe ≥ nlist path: all rows, exact sums,
// canonical order, hence bit-for-bit the flat scan's answer (the
// retained top-k under the (distance, index) total order is independent
// of the permuted visit order, and every surviving sum is the identical
// IEEE value the flat kernels produce).
func (x *Index) rerankRange(q []float64, k int, kern distance.Kernel, lo, hi int) []knn.Result {
	t := knn.NewTopK(k)
	bound := math.Inf(1)
	for pos := lo; pos < hi; pos++ {
		id := int(x.ids[pos])
		s, abandoned := kern.SquaredAbandon(q, x.b.Row(id), bound)
		if abandoned {
			continue
		}
		t.Offer(id, s)
		if b, ok := t.Bound(); ok {
			bound = b
		}
	}
	return finishSquared(t.Results(), k)
}

// finishSquared converts squared-space results to true distances in the
// canonical order (sqrt is monotone, so the (d², id) sort order is the
// (d, id) order).
func finishSquared(items []knn.Result, k int) []knn.Result {
	for i := range items {
		items[i].Distance = math.Sqrt(items[i].Distance)
	}
	knn.SortResults(items)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SearchBatchMulti implements knn.BatchSearcher: positionally-aligned
// per-query metrics, answered in parallel across GOMAXPROCS workers.
// Each query is answered independently, so results are identical to
// calling Search per query.
func (x *Index) SearchBatchMulti(qs [][]float64, k int, ms []distance.Metric) ([][]knn.Result, error) {
	if len(ms) != len(qs) {
		return nil, fmt.Errorf("ann: %d queries but %d metrics", len(qs), len(ms))
	}
	for i, q := range qs {
		if err := x.check(q, k); err != nil {
			return nil, fmt.Errorf("ann: batch query %d: %w", i, err)
		}
	}
	out := make([][]knn.Result, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(qs) / workers
		hi := (w + 1) * len(qs) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				res, err := x.Search(qs[i], k, ms[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = res
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// SearchBatch is SearchBatchMulti with one shared metric.
func (x *Index) SearchBatch(qs [][]float64, k int, m distance.Metric) ([][]knn.Result, error) {
	ms := make([]distance.Metric, len(qs))
	for i := range ms {
		ms[i] = m
	}
	return x.SearchBatchMulti(qs, k, ms)
}

// sqDistI8 accumulates the squared distance between q and an int8 row
// under the affine dequantization v = offset[j] + scale[j]·code, with
// the canonical 4-stripe order and early abandoning — the int8 twin of
// vec.SqDist32Abandon.
func sqDistI8(q []float64, codes []int8, scale, offset []float64, bound2 float64) (float64, bool) {
	n := len(q)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		qq := q[i : i+4 : i+4]
		cc := codes[i : i+4 : i+4]
		ss := scale[i : i+4 : i+4]
		oo := offset[i : i+4 : i+4]
		d0 := qq[0] - (oo[0] + ss[0]*float64(cc[0]))
		s0 += d0 * d0
		d1 := qq[1] - (oo[1] + ss[1]*float64(cc[1]))
		s1 += d1 * d1
		d2 := qq[2] - (oo[2] + ss[2]*float64(cc[2]))
		s2 += d2 * d2
		d3 := qq[3] - (oo[3] + ss[3]*float64(cc[3]))
		s3 += d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := q[i] - (offset[i] + scale[i]*float64(codes[i]))
		st += d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}

// sqDistI8W is the weighted counterpart of sqDistI8.
func sqDistI8W(q []float64, codes []int8, scale, offset, w []float64, bound2 float64) (float64, bool) {
	n := len(q)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		qq := q[i : i+4 : i+4]
		cc := codes[i : i+4 : i+4]
		ss := scale[i : i+4 : i+4]
		oo := offset[i : i+4 : i+4]
		ww := w[i : i+4 : i+4]
		d0 := qq[0] - (oo[0] + ss[0]*float64(cc[0]))
		s0 += ww[0] * d0 * d0
		d1 := qq[1] - (oo[1] + ss[1]*float64(cc[1]))
		s1 += ww[1] * d1 * d1
		d2 := qq[2] - (oo[2] + ss[2]*float64(cc[2]))
		s2 += ww[2] * d2 * d2
		d3 := qq[3] - (oo[3] + ss[3]*float64(cc[3]))
		s3 += ww[3] * d3 * d3
		if (s0+s1)+(s2+s3) > bound2 {
			return (s0 + s1) + (s2 + s3), true
		}
	}
	var st float64
	for ; i < n; i++ {
		d := q[i] - (offset[i] + scale[i]*float64(codes[i]))
		st += w[i] * d * d
	}
	s := (s0 + s1) + (s2 + s3) + st
	return s, s > bound2
}
