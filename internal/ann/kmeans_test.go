package ann

import (
	"math"
	"testing"
)

func TestSplitmix64Pinned(t *testing.T) {
	// Reference values of splitmix64 from seed 0 (Steele et al.); the
	// training stream must never drift across refactors or Go releases.
	r := &splitmix64{s: 0}
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := r.next(); got != w {
			t.Fatalf("splitmix64 output %d = %016x, want %016x", i, got, w)
		}
	}
}

func TestTrainSample(t *testing.T) {
	rng := &splitmix64{s: 9}
	s := trainSample(100, 200, rng)
	if len(s) != 100 {
		t.Fatalf("over-budget sample has %d rows, want all 100", len(s))
	}
	rng = &splitmix64{s: 9}
	s = trainSample(1000, 64, rng)
	if len(s) != 64 {
		t.Fatalf("sample has %d rows, want 64", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("sample not strictly ascending at %d: %d after %d", i, s[i], s[i-1])
		}
	}
	rng2 := &splitmix64{s: 9}
	s2 := trainSample(1000, 64, rng2)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling is not deterministic under a fixed seed")
		}
	}
}

// TestBuildDeterminism pins the package determinism contract: two builds
// from one seed are bit-identical in every component.
func TestBuildDeterminism(t *testing.T) {
	rng := newTestRNG(55)
	rows := clusteredRows(1500, 10, 11, rng)
	b := backendFor(t, rows)
	opts := Options{NList: 32, Quant: QuantI8, Seed: 77}
	x1, err := Build(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Build(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1.centroids {
		if math.Float64bits(x1.centroids[i]) != math.Float64bits(x2.centroids[i]) {
			t.Fatalf("centroid element %d differs between identical builds", i)
		}
	}
	for i := range x1.ids {
		if x1.ids[i] != x2.ids[i] {
			t.Fatalf("posting id %d differs between identical builds", i)
		}
	}
	for i := range x1.slab8 {
		if x1.slab8[i] != x2.slab8[i] {
			t.Fatalf("slab byte %d differs between identical builds", i)
		}
	}
	// A different seed must (on real data) train different centroids.
	x3, err := Build(b, Options{NList: 32, Quant: QuantI8, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range x1.centroids {
		if x1.centroids[i] != x3.centroids[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds trained identical centroids")
	}
}

// TestEmptyClusterReseed forces empty partitions (nlist close to the
// number of distinct points) and checks every partition ends non-empty
// enough to keep the posting lists a permutation.
func TestEmptyClusterReseed(t *testing.T) {
	// 12 distinct points, many duplicates, 8 clusters: duplicates collapse
	// assignments and empty clusters must be reseeded deterministically.
	rows := make([][]float64, 60)
	for i := range rows {
		v := float64(i % 12)
		rows[i] = []float64{v, -v, v * v}
	}
	b := backendFor(t, rows)
	x, err := Build(b, Options{NList: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	for _, c := range x.counts {
		total += c
	}
	if int(total) != len(rows) {
		t.Fatalf("posting lists hold %d rows, want %d", total, len(rows))
	}
	if err := x.validatePostings(); err != nil {
		t.Fatal(err)
	}
}
