// Portable OpenFBIX fallback for platforms without the mmap fast path
// (or with a big-endian word order, where the little-endian sections
// cannot be viewed in place): read the whole file and decode it into the
// heap. Semantics are identical to the mapped open except residency.

//go:build !((linux || darwin || freebsd || netbsd || openbsd || dragonfly) && (amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle))

package ann

import "os"

// OpenFBIX opens the FBIX sidecar at path by decoding it into the heap.
// The returned index is unbound: call Bind with the collection before
// searching. All format failures wrap store.ErrCorrupt; a missing file
// satisfies errors.Is(err, os.ErrNotExist).
func OpenFBIX(path string) (*Index, error) {
	//fbvet:ok portable fallback of the mmap open path; read-only, outside the faultfs crash schedules
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFBIX(data)
}
