package ann

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/distance"
	"repro/internal/knn"
	"repro/internal/store"
)

// testRNG wraps the package's pinned splitmix64 for test data generation
// so every dataset is identical on every platform and Go release.
type testRNG struct{ splitmix64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{splitmix64{s: seed}} }

// norm returns an approximately standard-normal variate (sum of 12
// uniforms, Irwin–Hall), deterministic and platform-independent.
func (r *testRNG) norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.float64()
	}
	return s - 6
}

// clusteredRows synthesizes the recall workload: k Gaussian clusters
// with well-separated centers, the regime IVF partitioning models.
func clusteredRows(n, dim, clusters int, rng *testRNG) [][]float64 {
	centers := make([][]float64, clusters)
	for c := range centers {
		ctr := make([]float64, dim)
		for j := range ctr {
			ctr[j] = 20 * r01(rng)
		}
		centers[c] = ctr
	}
	rows := make([][]float64, n)
	for i := range rows {
		ctr := centers[rng.intn(clusters)]
		row := make([]float64, dim)
		for j := range row {
			row[j] = ctr[j] + rng.norm()
		}
		rows[i] = row
	}
	return rows
}

func r01(rng *testRNG) float64 { return rng.float64() }

// tieRows synthesizes tie-heavy data: coordinates on a coarse integer
// grid, so many rows share exact distances and the (distance, index)
// tie-break is exercised.
func tieRows(n, dim int, rng *testRNG) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(rng.intn(4))
		}
		rows[i] = row
	}
	return rows
}

func backendFor(t *testing.T, rows [][]float64) store.Backend {
	t.Helper()
	b, err := store.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func bitwiseSame(t *testing.T, ctx string, got, want []knn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("%s: result %d index %d, want %d", ctx, i, got[i].Index, want[i].Index)
		}
		if math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("%s: result %d distance bits %x, want %x (index %d)",
				ctx, i, math.Float64bits(got[i].Distance), math.Float64bits(want[i].Distance), got[i].Index)
		}
	}
}

// TestFullProbeBitwiseParity is the tentpole invariant: with nprobe =
// nlist the IVF tier reproduces the exact scan bit for bit — same
// indices, same IEEE-754 distance bits — across dimensionalities
// (including the D=32 assembly fast path), quantizations, weighted and
// unweighted metrics, zero weights, and tie-heavy data.
func TestFullProbeBitwiseParity(t *testing.T) {
	rng := newTestRNG(41)
	for trial := 0; trial < 12; trial++ {
		dim := []int{3, 8, 32, 33}[trial%4]
		n := 200 + rng.intn(300)
		var rows [][]float64
		if trial%2 == 0 {
			rows = tieRows(n, dim, rng)
		} else {
			rows = clusteredRows(n, dim, 7, rng)
		}
		b := backendFor(t, rows)
		flat, err := knn.NewScanBackend(b)
		if err != nil {
			t.Fatal(err)
		}
		var m distance.Metric = distance.Euclidean{}
		if trial%3 == 1 {
			w := make([]float64, dim)
			for j := range w {
				w[j] = float64(rng.intn(5)) // includes exact zeros
			}
			wm, err := distance.NewWeightedEuclidean(w)
			if err != nil {
				t.Fatal(err)
			}
			m = wm
		}
		for _, quant := range []Quant{QuantF32, QuantI8} {
			nlist := 1 + rng.intn(16)
			x, err := Build(b, Options{NList: nlist, NProbe: nlist, Quant: quant, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < 5; qi++ {
				q := rows[rng.intn(n)]
				k := 1 + rng.intn(20)
				want, err := flat.Search(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := x.Search(q, k, m)
				if err != nil {
					t.Fatal(err)
				}
				bitwiseSame(t, x.Describe(), got, want)
				// nprobe above nlist is the same path.
				over, err := x.SearchNProbe(q, k, m, nlist+3)
				if err != nil {
					t.Fatal(err)
				}
				bitwiseSame(t, "overprobe", over, want)
			}
		}
	}
}

// TestRecallAtDefaultNProbe pins the accuracy gate: recall@10 ≥ 0.95 at
// the default nprobe on synthetic clustered data, for both slab
// quantizations (the exact rerank makes served distances exact, so any
// loss is shortlist misses only).
func TestRecallAtDefaultNProbe(t *testing.T) {
	rng := newTestRNG(7)
	const n, dim, k = 4000, 16, 10
	rows := clusteredRows(n, dim, 24, rng)
	b := backendFor(t, rows)
	flat, err := knn.NewScanBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, quant := range []Quant{QuantF32, QuantI8} {
		x, err := Build(b, Options{NList: 64, Quant: quant, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if x.NProbe() != 8 {
			t.Fatalf("default nprobe = %d, want nlist/8 = 8", x.NProbe())
		}
		var hit, total int
		for qi := 0; qi < 60; qi++ {
			q := make([]float64, dim)
			base := rows[rng.intn(n)]
			for j := range q {
				q[j] = base[j] + rng.norm()/2
			}
			want, err := flat.Search(q, k, distance.Euclidean{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := x.Search(q, k, distance.Euclidean{})
			if err != nil {
				t.Fatal(err)
			}
			exact := make(map[int]bool, k)
			for _, r := range want {
				exact[r.Index] = true
			}
			for _, r := range got {
				if exact[r.Index] {
					hit++
				}
			}
			total += len(want)
		}
		recall := float64(hit) / float64(total)
		t.Logf("quant=%s recall@%d = %.4f", quant, k, recall)
		if recall < 0.95 {
			t.Fatalf("quant=%s recall@%d = %.4f, want ≥ 0.95", quant, k, recall)
		}
	}
}

// TestBatchMatchesSearch pins SearchBatchMulti to per-query Search —
// including the fallback for metrics without a squared-space kernel.
func TestBatchMatchesSearch(t *testing.T) {
	rng := newTestRNG(13)
	rows := clusteredRows(900, 12, 9, rng)
	b := backendFor(t, rows)
	x, err := Build(b, Options{NList: 24, Quant: QuantI8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 17)
	ms := make([]distance.Metric, len(qs))
	for i := range qs {
		q := make([]float64, 12)
		for j := range q {
			q[j] = 20 * rng.float64()
		}
		qs[i] = q
		switch i % 3 {
		case 0:
			ms[i] = distance.Euclidean{}
		case 1:
			w := make([]float64, 12)
			for j := range w {
				w[j] = rng.float64()
			}
			wm, err := distance.NewWeightedEuclidean(w)
			if err != nil {
				t.Fatal(err)
			}
			ms[i] = wm
		default:
			ms[i] = distance.Manhattan{} // no kernel: exact-scan fallback
		}
	}
	got, err := x.SearchBatchMulti(qs, 10, ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want, err := x.Search(qs[i], 10, ms[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch query %d differs from Search", i)
		}
	}
	if _, err := x.SearchBatchMulti(qs, 10, ms[:3]); err == nil {
		t.Fatal("mismatched metric count accepted")
	}
}

// TestOptionsValidation covers Build and query parameter rejection.
func TestOptionsValidation(t *testing.T) {
	rng := newTestRNG(5)
	rows := tieRows(50, 4, rng)
	b := backendFor(t, rows)
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil backend accepted")
	}
	if _, err := Build(b, Options{NList: 51}); err == nil {
		t.Fatal("nlist > n accepted")
	}
	if _, err := Build(b, Options{NProbe: -1}); err == nil {
		t.Fatal("negative nprobe accepted")
	}
	if _, err := Build(b, Options{Quant: Quant(9)}); err == nil {
		t.Fatal("unknown quant accepted")
	}
	if _, err := Build(b, Options{RerankFactor: -2}); err == nil {
		t.Fatal("negative rerank factor accepted")
	}
	x, err := Build(b, Options{NList: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.SetNProbe(0); err == nil {
		t.Fatal("SetNProbe(0) accepted")
	}
	if _, err := x.Search(rows[0], 0, distance.Euclidean{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := x.Search([]float64{1}, 3, distance.Euclidean{}); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
	if _, err := x.SearchNProbe(rows[0], 3, distance.Euclidean{}, 0); err == nil {
		t.Fatal("SearchNProbe(0) accepted")
	}
	if got := x.Describe(); got != "ivf(nlist=8,nprobe=1,quant=f32)" {
		t.Fatalf("Describe() = %q", got)
	}
	if _, err := ParseQuant("i8"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseQuant("f16"); err == nil {
		t.Fatal("ParseQuant accepted f16")
	}
}

// TestI8Quantization pins the affine dequantization: codes reconstruct
// every value within half a quantization step per dimension, and
// constant dimensions (span zero) reconstruct exactly.
func TestI8Quantization(t *testing.T) {
	rng := newTestRNG(19)
	const n, dim = 300, 6
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			if j == 2 {
				row[j] = 7.25 // constant dimension: scale must be 0
			} else {
				row[j] = 100 * rng.float64()
			}
		}
		rows[i] = row
	}
	b := backendFor(t, rows)
	x, err := Build(b, Options{NList: 4, Quant: QuantI8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.scale[2] != 0 || x.offset[2] != 7.25 {
		t.Fatalf("constant dim: scale=%g offset=%g, want 0 and 7.25", x.scale[2], x.offset[2])
	}
	for pos, id := range x.ids {
		row := rows[id]
		codes := x.slab8[pos*dim : (pos+1)*dim]
		for j, v := range row {
			deq := x.offset[j] + x.scale[j]*float64(codes[j])
			tol := x.scale[j]/2 + 1e-9
			if math.Abs(deq-v) > tol {
				t.Fatalf("row %d dim %d: dequant %g vs %g exceeds half-step %g", id, j, deq, v, tol)
			}
		}
	}
}

// TestSqDistI8MatchesDequant pins the int8 probe kernels to a naive
// dequantize-then-SqDist reference, including the abandoning contract.
func TestSqDistI8MatchesDequant(t *testing.T) {
	rng := newTestRNG(29)
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.intn(40)
		q := make([]float64, dim)
		w := make([]float64, dim)
		scale := make([]float64, dim)
		offset := make([]float64, dim)
		codes := make([]int8, dim)
		deq := make([]float64, dim)
		for j := 0; j < dim; j++ {
			q[j] = 10 * rng.float64()
			w[j] = float64(rng.intn(4))
			scale[j] = rng.float64() / 8
			offset[j] = 5 * rng.float64()
			codes[j] = int8(rng.intn(256) - 128)
			deq[j] = offset[j] + scale[j]*float64(codes[j])
		}
		wantU := naiveSq(q, deq, nil)
		wantW := naiveSq(q, deq, w)
		if s, ab := sqDistI8(q, codes, scale, offset, math.Inf(1)); ab || math.Abs(s-wantU) > 1e-9*(1+wantU) {
			t.Fatalf("trial %d: sqDistI8 = %g (abandoned=%v), want %g", trial, s, ab, wantU)
		}
		if s, ab := sqDistI8W(q, codes, scale, offset, w, math.Inf(1)); ab || math.Abs(s-wantW) > 1e-9*(1+wantW) {
			t.Fatalf("trial %d: sqDistI8W = %g (abandoned=%v), want %g", trial, s, ab, wantW)
		}
		// Abandoning: a bound below the true sum must abandon; a surviving
		// sum at a bound above it must equal the full sum.
		if wantU > 0 {
			if _, ab := sqDistI8(q, codes, scale, offset, wantU/2); !ab {
				t.Fatalf("trial %d: bound below sum did not abandon", trial)
			}
			s, ab := sqDistI8(q, codes, scale, offset, wantU*2)
			sFull, _ := sqDistI8(q, codes, scale, offset, math.Inf(1))
			if ab || math.Float64bits(s) != math.Float64bits(sFull) {
				t.Fatalf("trial %d: surviving abandoning sum differs from full sum", trial)
			}
		}
	}
}

func naiveSq(q, r, w []float64) float64 {
	var s float64
	for j := range q {
		d := q[j] - r[j]
		if w != nil {
			s += w[j] * d * d
		} else {
			s += d * d
		}
	}
	return s
}
