package ann

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/distance"
	"repro/internal/faultfs"
	"repro/internal/store"
)

// buildTestIndex returns a small index plus its collection backend.
func buildTestIndex(t *testing.T, quant Quant) (*Index, store.Backend) {
	t.Helper()
	rng := newTestRNG(91)
	rows := clusteredRows(600, 9, 6, rng)
	b := backendFor(t, rows)
	x, err := Build(b, Options{NList: 12, NProbe: 3, Quant: quant, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return x, b
}

// sameResults runs a handful of queries through both indexes and
// requires identical answers.
func sameResults(t *testing.T, ctx string, a, b *Index, backend store.Backend) {
	t.Helper()
	rng := newTestRNG(37)
	for qi := 0; qi < 8; qi++ {
		q := backend.Row(rng.intn(backend.Len()))
		ra, err := a.Search(q, 10, distance.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(q, 10, distance.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%s: query %d answers differ", ctx, qi)
		}
	}
}

func TestFBIXRoundtrip(t *testing.T) {
	for _, quant := range []Quant{QuantF32, QuantI8} {
		x, b := buildTestIndex(t, quant)
		path := filepath.Join(t.TempDir(), "col.fbix")
		if err := WriteFBIX(path, x); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		y, err := DecodeFBIX(data)
		if err != nil {
			t.Fatal(err)
		}
		if y.n != x.n || y.dim != x.dim || y.nlist != x.nlist || y.nprobe != x.nprobe ||
			y.quant != x.quant || y.seed != x.seed || y.rerank != x.rerank {
			t.Fatalf("decoded parameters differ: %+v", y.Describe())
		}
		if !reflect.DeepEqual(y.centroids, x.centroids) || !reflect.DeepEqual(y.ids, x.ids) ||
			!reflect.DeepEqual(y.counts, x.counts) {
			t.Fatal("decoded sections differ from built index")
		}
		if quant == QuantI8 {
			if !reflect.DeepEqual(y.slab8, x.slab8) || !reflect.DeepEqual(y.scale, x.scale) ||
				!reflect.DeepEqual(y.offset, x.offset) {
				t.Fatal("decoded i8 slab differs")
			}
		} else if !reflect.DeepEqual(y.slab32, x.slab32) {
			t.Fatal("decoded f32 slab differs")
		}
		// Unbound index must refuse to search, then serve after Bind.
		if _, err := y.Search(b.Row(0), 5, distance.Euclidean{}); err == nil {
			t.Fatal("unbound index accepted a search")
		}
		if err := y.Bind(b); err != nil {
			t.Fatal(err)
		}
		sameResults(t, "decode/"+quant.String(), y, x, b)
	}
}

func TestFBIXOpenMmap(t *testing.T) {
	for _, quant := range []Quant{QuantF32, QuantI8} {
		x, b := buildTestIndex(t, quant)
		path := filepath.Join(t.TempDir(), "col.fbix")
		if err := WriteFBIX(path, x); err != nil {
			t.Fatal(err)
		}
		y, err := OpenFBIX(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := y.Bind(b); err != nil {
			t.Fatal(err)
		}
		sameResults(t, "open/"+quant.String(), y, x, b)
		if err := y.Close(); err != nil {
			t.Fatal(err)
		}
		if err := y.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	if _, err := OpenFBIX(filepath.Join(t.TempDir(), "absent.fbix")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

func TestFBIXBindShapeCheck(t *testing.T) {
	x, _ := buildTestIndex(t, QuantF32)
	wrong, err := store.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Bind(wrong); err == nil {
		t.Fatal("Bind accepted a backend of the wrong shape")
	}
	if err := x.Bind(nil); err == nil {
		t.Fatal("Bind accepted a nil backend")
	}
}

// refreshCRCs recomputes both checksums of an FBIX image after a test
// mutated the payload, so structural validation (not the CRC) is what
// rejects it.
func refreshCRCs(img []byte) {
	binary.LittleEndian.PutUint32(img[56:60], crc32.ChecksumIEEE(img[fbixHeaderPage:]))
	binary.LittleEndian.PutUint32(img[60:64], crc32.ChecksumIEEE(img[:60]))
}

func TestFBIXCorruption(t *testing.T) {
	x, _ := buildTestIndex(t, QuantI8)
	path := filepath.Join(t.TempDir(), "col.fbix")
	if err := WriteFBIX(path, x); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := layoutFor(uint64(x.n), uint64(x.dim), uint64(x.nlist), x.quant)

	cases := []struct {
		name   string
		mutate func(img []byte) []byte
	}{
		{"empty", func(img []byte) []byte { return nil }},
		{"truncated header", func(img []byte) []byte { return img[:40] }},
		{"truncated payload", func(img []byte) []byte { return img[:len(img)-8] }},
		{"bad magic", func(img []byte) []byte { img[0] = 'X'; return img }},
		{"bad version", func(img []byte) []byte { img[4] = 99; refreshHdrOnly(img); return img }},
		{"flipped header bit", func(img []byte) []byte { img[20] ^= 1; return img }},
		{"flipped payload bit", func(img []byte) []byte { img[fbixHeaderPage+5] ^= 1; return img }},
		{"zero nlist", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[24:32], 0)
			refreshHdrOnly(img)
			return img
		}},
		{"huge shape", func(img []byte) []byte {
			binary.LittleEndian.PutUint64(img[8:16], 1<<40)
			refreshHdrOnly(img)
			return img
		}},
		{"bad quant", func(img []byte) []byte {
			binary.LittleEndian.PutUint32(img[32:36], 7)
			refreshHdrOnly(img)
			return img
		}},
		{"posting id out of range", func(img []byte) []byte {
			binary.LittleEndian.PutUint32(img[fbixHeaderPage+int(l.ids):], uint32(0x7fffffff))
			refreshCRCs(img)
			return img
		}},
		{"duplicate posting id", func(img []byte) []byte {
			first := binary.LittleEndian.Uint32(img[fbixHeaderPage+int(l.ids):])
			binary.LittleEndian.PutUint32(img[fbixHeaderPage+int(l.ids)+4*(x.n-1):], first)
			refreshCRCs(img)
			return img
		}},
		{"counts do not sum to n", func(img []byte) []byte {
			c0 := binary.LittleEndian.Uint32(img[fbixHeaderPage+int(l.counts):])
			binary.LittleEndian.PutUint32(img[fbixHeaderPage+int(l.counts):], c0+1)
			refreshCRCs(img)
			return img
		}},
	}
	for _, tc := range cases {
		img := append([]byte(nil), good...)
		mut := tc.mutate(img)
		if _, err := DecodeFBIX(mut); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want store.ErrCorrupt", tc.name, err)
		}
	}
	// The pristine image still decodes (the cases above worked on copies).
	if _, err := DecodeFBIX(good); err != nil {
		t.Fatal(err)
	}
}

func refreshHdrOnly(img []byte) {
	binary.LittleEndian.PutUint32(img[60:64], crc32.ChecksumIEEE(img[:60]))
}

// TestFBIXWriteFaults drives WriteFBIXFS through the fault-injection
// plane: any failed write, sync, or rename must surface an error and
// leave no index file (and no temp debris) behind; the atomic rename
// means a crash mid-write is invisible to a later open.
func TestFBIXWriteFaults(t *testing.T) {
	x, _ := buildTestIndex(t, QuantF32)
	faults := []faultfs.Rule{
		{Op: faultfs.OpWrite, Nth: 1, Kind: faultfs.Fail},
		{Op: faultfs.OpWrite, Nth: 3, Kind: faultfs.ShortWrite},
		{Op: faultfs.OpSync, Nth: 1, Kind: faultfs.Fail},
		{Op: faultfs.OpRename, Nth: 1, Kind: faultfs.Fail},
		{Op: faultfs.OpWrite, Nth: 2, Kind: faultfs.ENOSPC},
	}
	for i, rule := range faults {
		dir := t.TempDir()
		path := filepath.Join(dir, "col.fbix")
		fs := faultfs.New(nil)
		fs.AddRule(rule)
		if err := WriteFBIXFS(fs, path, x); err == nil {
			t.Fatalf("fault %d: write succeeded despite injected %v", i, rule.Op)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("fault %d: index file exists after failed write", i)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("fault %d: debris left behind: %v", i, entries)
		}
	}
	// No faults through the same seam: the write lands and decodes.
	dir := t.TempDir()
	path := filepath.Join(dir, "col.fbix")
	if err := WriteFBIXFS(faultfs.New(nil), path, x); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFBIX(path); err != nil {
		t.Fatal(err)
	}
}
