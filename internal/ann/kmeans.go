// Deterministic k-means for the IVF coarse quantizer. Everything that
// could perturb the result is pinned: the PRNG is a private splitmix64
// (not math/rand, whose stream is not guaranteed across Go releases),
// k-means++ seeding and Lloyd iterations visit rows in ascending order
// with sequential float64 accumulation, nearest-centroid ties break to
// the lowest centroid index, and empty clusters are reseeded from the
// farthest row by the same total order. Training twice with one seed
// therefore yields bit-identical centroids — the golden test pins this —
// which in turn makes FBIX sidecars reproducible from their recorded
// (seed, nlist) alone.
package ann

import (
	"math"

	"repro/internal/store"
	"repro/internal/vec"
)

// splitmix64 is the pinned training PRNG (Steele et al., "Fast
// Splittable Pseudorandom Number Generators").
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// trainSample returns the row ids k-means trains on: all rows when the
// collection fits the budget, otherwise a partial Fisher–Yates sample
// (deterministic given the PRNG state), returned in ascending order so
// the accumulation order is independent of the shuffle.
func trainSample(n, budget int, rng *splitmix64) []int32 {
	if budget >= n {
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		return ids
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 0; i < budget; i++ {
		j := i + rng.intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	sample := perm[:budget]
	// Insertion-free ascending order via a counting pass would need O(n);
	// a simple sort keeps it O(budget log budget).
	sortInt32(sample)
	return sample
}

func sortInt32(s []int32) {
	// Shell sort: no dependency on sort's unstable algorithm details, and
	// n is at most the training budget.
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= gap && s[j-gap] > v; j -= gap {
				s[j] = s[j-gap]
			}
			s[j] = v
		}
	}
}

// nearestCentroid returns the index and squared Euclidean distance of
// the centroid closest to row, ties broken by the lowest index: the
// abandoning comparison is strict and a later centroid replaces the
// incumbent only on a strictly smaller sum.
func nearestCentroid(row, centroids []float64, dim int) (int, float64) {
	best := math.Inf(1)
	bestC := 0
	for c := 0; c*dim < len(centroids); c++ {
		s, abandoned := vec.SqDistAbandon(row, centroids[c*dim:(c+1)*dim], best)
		if !abandoned && s < best {
			best, bestC = s, c
		}
	}
	return bestC, best
}

// trainKMeans runs k-means++ seeding plus at most iters Lloyd rounds
// over the sampled rows of b and returns nlist×dim centroids.
func trainKMeans(b store.Backend, sample []int32, nlist, iters int, rng *splitmix64) []float64 {
	dim := b.Dim()
	centroids := make([]float64, nlist*dim)

	// k-means++ seeding: first centroid uniform, then D²-weighted.
	first := b.Row(int(sample[rng.intn(len(sample))]))
	copy(centroids[:dim], first)
	d2 := make([]float64, len(sample)) // distance to nearest chosen centroid
	for i, id := range sample {
		d2[i] = vec.SqDist(b.Row(int(id)), centroids[:dim])
	}
	for c := 1; c < nlist; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		pick := 0
		if total > 0 && !math.IsInf(total, 0) && !math.IsNaN(total) {
			x := rng.float64() * total
			var cum float64
			for i, v := range d2 {
				cum += v
				if cum >= x {
					pick = i
					break
				}
				pick = i // rounding can leave cum < x at the end; keep last
			}
		} else {
			pick = rng.intn(len(sample))
		}
		cent := centroids[c*dim : (c+1)*dim]
		copy(cent, b.Row(int(sample[pick])))
		for i, id := range sample {
			if s, abandoned := vec.SqDistAbandon(b.Row(int(id)), cent, d2[i]); !abandoned && s < d2[i] {
				d2[i] = s
			}
		}
	}

	assign := make([]int32, len(sample))
	for i := range assign {
		assign[i] = -1
	}
	sums := make([]float64, nlist*dim)
	counts := make([]int, nlist)
	rowD2 := make([]float64, len(sample))
	for it := 0; it < iters; it++ {
		changed := false
		for i, id := range sample {
			c, s := nearestCentroid(b.Row(int(id)), centroids, dim)
			rowD2[i] = s
			if int32(c) != assign[i] {
				assign[i] = int32(c)
				changed = true
			}
		}
		if !changed {
			break
		}
		// Sequential centroid update in ascending row order: the FP
		// accumulation order is part of the determinism contract.
		clear(sums)
		clear(counts)
		for i, id := range sample {
			c := int(assign[i])
			row := b.Row(int(id))
			acc := sums[c*dim : (c+1)*dim]
			for j, x := range row {
				acc[j] += x
			}
			counts[c]++
		}
		for c := 0; c < nlist; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			cent := centroids[c*dim : (c+1)*dim]
			for j := range cent {
				cent[j] = sums[c*dim+j] * inv
			}
		}
		// Reseed empty clusters from the farthest assigned rows, ascending
		// cluster index, strict > so the lowest row id wins distance ties.
		for c := 0; c < nlist; c++ {
			if counts[c] != 0 {
				continue
			}
			far, farD := -1, -1.0
			for i := range sample {
				if rowD2[i] > farD {
					far, farD = i, rowD2[i]
				}
			}
			if far < 0 {
				break
			}
			copy(centroids[c*dim:(c+1)*dim], b.Row(int(sample[far])))
			rowD2[far] = -2 // cannot be chosen by a later empty cluster
			assign[far] = int32(c)
			counts[c] = 1
		}
	}
	return centroids
}
