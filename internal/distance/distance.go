// Package distance implements the parameterized distance-function classes
// of §2 of the paper: Lp norms, the weighted Euclidean distance of Eq. (1),
// quadratic (Mahalanobis) distances, and the Rui–Huang hierarchical model
// that combines per-feature distances with feature-level weights.
//
// Every distance implements Metric; weighted variants additionally expose
// their parameter vector so the FeedbackBypass module can store and predict
// it as part of the optimal query parameters (OQPs).
package distance

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Metric measures dissimilarity between equal-length feature vectors.
// Implementations must be symmetric, non-negative, and zero on identical
// inputs; all the metrics in this package additionally satisfy the
// triangle inequality for valid parameters, which the index structures
// (VP-tree, M-tree) rely on.
type Metric interface {
	// Distance returns d(a, b). It panics on dimension mismatch, matching
	// the package vec convention for programmer errors.
	Distance(a, b []float64) float64
	// Name identifies the metric for logging and experiment output.
	Name() string
}

// Parameterized is a Metric drawn from a parameterized class: its
// parameters are exactly what FeedbackBypass learns (the W of §3).
type Parameterized interface {
	Metric
	// Params returns the parameter vector W characterizing this instance.
	// The slice must be treated as read-only.
	Params() []float64
}

// Euclidean is the unweighted L2 distance — the paper's default distance
// function.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b []float64) float64 { return vec.Dist(a, b) }

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 distance.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ distance.
type Chebyshev struct{}

// Distance implements Metric.
func (Chebyshev) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Lp is the Minkowski distance of order P ≥ 1.
type Lp struct{ P float64 }

// NewLp returns the Lp metric, rejecting orders below 1 (which violate the
// triangle inequality).
func NewLp(p float64) (Lp, error) {
	if p < 1 || math.IsNaN(p) || math.IsInf(p, 0) {
		return Lp{}, fmt.Errorf("distance: Lp order must be a finite value ≥ 1, got %v", p)
	}
	return Lp{P: p}, nil
}

// Distance implements Metric.
func (l Lp) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("distance: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), l.P)
	}
	return math.Pow(s, 1/l.P)
}

// Name implements Metric.
func (l Lp) Name() string { return fmt.Sprintf("l%g", l.P) }

// WeightedEuclidean is Eq. (1) of the paper:
//
//	d(p, q; W) = ( Σ_i w_i (p_i − q_i)² )^½
//
// with non-negative weights. It is the distance class used by the paper's
// experiments (P = D independent parameters once one weight is pinned).
type WeightedEuclidean struct {
	w []float64
}

// NewWeightedEuclidean validates the weights (finite, non-negative, at
// least one positive) and returns the metric. The weight slice is copied.
func NewWeightedEuclidean(w []float64) (*WeightedEuclidean, error) {
	if len(w) == 0 {
		return nil, errors.New("distance: weighted Euclidean needs at least one weight")
	}
	anyPositive := false
	for i, x := range w {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return nil, fmt.Errorf("distance: weight %d is invalid: %v", i, x)
		}
		if x > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return nil, errors.New("distance: all weights are zero")
	}
	return &WeightedEuclidean{w: vec.Clone(w)}, nil
}

// UniformWeighted returns the weighted Euclidean metric with all weights 1
// over d dimensions — identical to Euclidean, but carrying parameters.
func UniformWeighted(d int) *WeightedEuclidean {
	return &WeightedEuclidean{w: vec.Ones(d)}
}

// Distance implements Metric. It is math.Sqrt(vec.SqDistW(a, b, w)), the
// same canonical accumulation the retrieval kernels use, so naive and
// kernelized paths agree bitwise.
func (m *WeightedEuclidean) Distance(a, b []float64) float64 {
	if len(a) != len(m.w) || len(b) != len(m.w) {
		panic(fmt.Sprintf("distance: dimension mismatch: %d, %d vs %d weights", len(a), len(b), len(m.w)))
	}
	return math.Sqrt(vec.SqDistW(a, b, m.w))
}

// Name implements Metric.
func (m *WeightedEuclidean) Name() string { return "weighted-euclidean" }

// Params implements Parameterized.
func (m *WeightedEuclidean) Params() []float64 { return m.w }

// Dim returns the dimensionality of the metric.
func (m *WeightedEuclidean) Dim() int { return len(m.w) }

// MinWeight returns the smallest weight; √MinWeight·L2(a,b) lower-bounds
// the weighted distance, which metric indexes built on plain L2 use to
// prune candidates for re-weighted queries.
func (m *WeightedEuclidean) MinWeight() float64 {
	min := math.Inf(1)
	for _, w := range m.w {
		if w < min {
			min = w
		}
	}
	return min
}

// MaxWeight returns the largest weight; √MaxWeight·L2(a,b) upper-bounds
// the weighted distance.
func (m *WeightedEuclidean) MaxWeight() float64 {
	max := math.Inf(-1)
	for _, w := range m.w {
		if w > max {
			max = w
		}
	}
	return max
}

// Quadratic is the generalized (Mahalanobis-style) quadratic distance of
// §2: d²(p, q; W) = (p−q)ᵀ W (p−q) with W symmetric positive semidefinite.
type Quadratic struct {
	w *vec.Matrix
}

// NewQuadratic validates that w is square and symmetric and returns the
// metric. Positive semidefiniteness is the caller's responsibility for
// performance reasons; Validate checks it explicitly.
func NewQuadratic(w *vec.Matrix) (*Quadratic, error) {
	if w.Rows != w.Cols {
		return nil, fmt.Errorf("distance: quadratic weight matrix must be square, got %dx%d", w.Rows, w.Cols)
	}
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			if math.Abs(w.At(i, j)-w.At(j, i)) > 1e-9 {
				return nil, fmt.Errorf("distance: weight matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return &Quadratic{w: w.Clone()}, nil
}

// Validate confirms the weight matrix is positive semidefinite (within
// tol), so the quadratic form is a valid squared distance.
func (m *Quadratic) Validate(tol float64) error {
	e, err := vec.SymmetricEigen(m.w, 1e-9)
	if err != nil {
		return err
	}
	for _, v := range e.Values {
		if v < -tol {
			return fmt.Errorf("distance: weight matrix has negative eigenvalue %v", v)
		}
	}
	return nil
}

// Distance implements Metric.
func (m *Quadratic) Distance(a, b []float64) float64 {
	n := m.w.Rows
	if len(a) != n || len(b) != n {
		panic(fmt.Sprintf("distance: dimension mismatch: %d, %d vs %dx%d matrix", len(a), len(b), n, n))
	}
	diff := vec.Sub(a, b)
	wd := m.w.MulVec(diff)
	d2 := vec.Dot(diff, wd)
	if d2 < 0 {
		// Guard tiny negative values from floating-point noise on PSD
		// matrices.
		d2 = 0
	}
	return math.Sqrt(d2)
}

// Name implements Metric.
func (m *Quadratic) Name() string { return "quadratic" }

// Params implements Parameterized: the row-major flattening of W.
func (m *Quadratic) Params() []float64 { return m.w.Data }

// Matrix returns the weight matrix (read-only).
func (m *Quadratic) Matrix() *vec.Matrix { return m.w }

// Hierarchical implements the Rui–Huang model [RH00] discussed in §2:
// objects are represented by F features (contiguous slices of the full
// vector); the distance is a weighted sum of per-feature distances,
//
//	d(p, q) = Σ_f u_f · d_f(p_f, q_f)
//
// where each d_f is itself a parameterized metric (typically weighted
// Euclidean) and u_f are non-negative feature weights.
type Hierarchical struct {
	bounds  []int // feature f spans [bounds[f], bounds[f+1])
	metrics []Parameterized
	u       []float64
}

// NewHierarchical builds the model from feature lengths, per-feature
// metrics, and feature weights. Each metric must accept vectors of its
// feature's length.
func NewHierarchical(featureLens []int, metrics []Parameterized, u []float64) (*Hierarchical, error) {
	if len(featureLens) == 0 {
		return nil, errors.New("distance: hierarchical model needs at least one feature")
	}
	if len(metrics) != len(featureLens) || len(u) != len(featureLens) {
		return nil, fmt.Errorf("distance: got %d features, %d metrics, %d weights", len(featureLens), len(metrics), len(u))
	}
	bounds := make([]int, len(featureLens)+1)
	for f, l := range featureLens {
		if l <= 0 {
			return nil, fmt.Errorf("distance: feature %d has non-positive length %d", f, l)
		}
		bounds[f+1] = bounds[f] + l
	}
	for f, w := range u {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("distance: feature weight %d is invalid: %v", f, w)
		}
	}
	return &Hierarchical{bounds: bounds, metrics: metrics, u: vec.Clone(u)}, nil
}

// Dim returns the total vector length the model expects.
func (m *Hierarchical) Dim() int { return m.bounds[len(m.bounds)-1] }

// Distance implements Metric.
func (m *Hierarchical) Distance(a, b []float64) float64 {
	if len(a) != m.Dim() || len(b) != m.Dim() {
		panic(fmt.Sprintf("distance: dimension mismatch: %d, %d vs %d", len(a), len(b), m.Dim()))
	}
	var s float64
	for f := range m.metrics {
		lo, hi := m.bounds[f], m.bounds[f+1]
		s += m.u[f] * m.metrics[f].Distance(a[lo:hi], b[lo:hi])
	}
	return s
}

// Name implements Metric.
func (m *Hierarchical) Name() string { return "hierarchical" }

// Params implements Parameterized: feature weights followed by each
// feature metric's parameters, concatenated.
func (m *Hierarchical) Params() []float64 {
	out := vec.Clone(m.u)
	for _, fm := range m.metrics {
		out = append(out, fm.Params()...)
	}
	return out
}

// FeatureWeights returns the feature-level weights (read-only).
func (m *Hierarchical) FeatureWeights() []float64 { return m.u }
