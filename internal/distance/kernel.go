// Squared-space distance kernels: the hot inner loops of the retrieval
// core. For metrics of the form d(a,b) = √Σᵢ termᵢ (Euclidean, weighted
// Euclidean) a scan can compare candidates by their squared distance —
// monotone in the true distance — and take one square root per *reported
// result* instead of one per database vector, early-abandoning a
// candidate as soon as its partial sum exceeds the caller's pruning
// bound. The arithmetic lives in vec (SqDist / SqDistW and their Abandon
// variants), which is also what the naive Metric.Distance implementations
// call, so surviving sums are bitwise identical across all paths — the
// parity property tests in package knn rely on this.
package distance

import (
	"math"

	"repro/internal/vec"
)

// Kernel is a specialized squared-distance routine for one metric,
// obtained through KernelFor.
type Kernel struct {
	// w holds per-dimension weights, or nil for the unweighted Euclidean
	// kernel.
	w []float64
}

// KernelFor returns the squared-space kernel for m, or ok=false when m is
// not a kernel-accelerable metric. Euclidean and WeightedEuclidean (the
// two metric classes the paper's feedback loop re-parameterizes) are
// supported.
func KernelFor(m Metric) (Kernel, bool) {
	switch t := m.(type) {
	case Euclidean:
		return Kernel{}, true
	case *WeightedEuclidean:
		return Kernel{w: t.w}, true
	}
	return Kernel{}, false
}

// Weights returns the kernel's per-dimension weights (read-only), or nil
// for the unweighted Euclidean kernel. Exposing the slice lets scan loops
// dispatch to the right vec primitive once per shard instead of once per
// candidate.
func (k Kernel) Weights() []float64 { return k.w }

// Distance returns the true metric distance — √Squared — for callers that
// need one-off true-space values (e.g. index node pivots).
func (k Kernel) Distance(q, row []float64) float64 {
	return math.Sqrt(k.Squared(q, row))
}

// Squared returns the full squared distance between q and row.
func (k Kernel) Squared(q, row []float64) float64 {
	if k.w == nil {
		return vec.SqDist(q, row)
	}
	return vec.SqDistW(q, row, k.w)
}

// SquaredAbandon accumulates the squared distance between q and row,
// giving up once the partial sum exceeds bound2 (a squared-space pruning
// radius). When abandoned is false, sum is the complete squared distance.
func (k Kernel) SquaredAbandon(q, row []float64, bound2 float64) (sum float64, abandoned bool) {
	if k.w == nil {
		return vec.SqDistAbandon(q, row, bound2)
	}
	return vec.SqDistWAbandon(q, row, k.w, bound2)
}

// SquaredBoundAbove returns a squared-space bound guaranteed to be ≥ tau²
// for a true-space radius tau: fl(tau·tau) can round below the exact
// product, so one ulp is added back. Abandoning a candidate whose partial
// squared sum exceeds this value can never discard a candidate within
// true-space radius tau.
func SquaredBoundAbove(tau float64) float64 {
	if math.IsInf(tau, 1) {
		return tau
	}
	return math.Nextafter(tau*tau, math.Inf(1))
}
