package distance

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// metricAxioms exercises symmetry, identity, non-negativity, and the
// triangle inequality on random vectors.
func metricAxioms(t *testing.T, m Metric, dim int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	randVec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 5
		}
		return v
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := randVec(), randVec(), randVec()
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("%s: asymmetric: %v vs %v", m.Name(), dab, dba)
		}
		if dab < 0 {
			t.Fatalf("%s: negative distance %v", m.Name(), dab)
		}
		if daa := m.Distance(a, a); daa > 1e-9 {
			t.Fatalf("%s: d(a,a) = %v", m.Name(), daa)
		}
		dac, dbc := m.Distance(a, c), m.Distance(b, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("%s: triangle violated: d(a,c)=%v > %v + %v", m.Name(), dac, dab, dbc)
		}
	}
}

func TestEuclideanAxiomsAndValue(t *testing.T) {
	metricAxioms(t, Euclidean{}, 8, 1)
	if got := (Euclidean{}).Distance([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Euclidean = %v", got)
	}
	if (Euclidean{}).Name() != "euclidean" {
		t.Error("name")
	}
}

func TestManhattanAxiomsAndValue(t *testing.T) {
	metricAxioms(t, Manhattan{}, 8, 2)
	if got := (Manhattan{}).Distance([]float64{0, 0}, []float64{3, 4}); got != 7 {
		t.Errorf("Manhattan = %v", got)
	}
}

func TestChebyshevAxiomsAndValue(t *testing.T) {
	metricAxioms(t, Chebyshev{}, 8, 3)
	if got := (Chebyshev{}).Distance([]float64{0, 0}, []float64{3, -4}); got != 4 {
		t.Errorf("Chebyshev = %v", got)
	}
}

func TestLpFamily(t *testing.T) {
	l2, err := NewLp(2)
	if err != nil {
		t.Fatal(err)
	}
	metricAxioms(t, l2, 6, 4)
	a, b := []float64{0, 0}, []float64{3, 4}
	if got := l2.Distance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v", got)
	}
	l1, _ := NewLp(1)
	if got := l1.Distance(a, b); math.Abs(got-7) > 1e-12 {
		t.Errorf("L1 = %v", got)
	}
	l3, _ := NewLp(3)
	metricAxioms(t, l3, 6, 5)
	want := math.Pow(27+64, 1.0/3.0)
	if got := l3.Distance(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("L3 = %v, want %v", got, want)
	}
	for _, p := range []float64{0.5, 0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLp(p); err == nil {
			t.Errorf("NewLp(%v) should fail", p)
		}
	}
}

func TestWeightedEuclideanValidation(t *testing.T) {
	if _, err := NewWeightedEuclidean(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewWeightedEuclidean([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeightedEuclidean([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	if _, err := NewWeightedEuclidean([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
	if _, err := NewWeightedEuclidean([]float64{1, 0}); err != nil {
		t.Error("one zero weight among positive ones is legal (dimension ignored)")
	}
}

func TestWeightedEuclideanMatchesFormula(t *testing.T) {
	m, err := NewWeightedEuclidean([]float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	// d = sqrt(4·(1-0)² + 1·(2-0)²) = sqrt(8)
	got := m.Distance([]float64{0, 0}, []float64{1, 2})
	if math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Errorf("weighted = %v", got)
	}
	metricAxioms(t, m, 2, 6)
}

func TestWeightedEuclideanCopiesWeights(t *testing.T) {
	w := []float64{1, 2}
	m, _ := NewWeightedEuclidean(w)
	w[0] = 99
	if m.Params()[0] != 1 {
		t.Error("weights should be copied at construction")
	}
}

func TestUniformWeightedEqualsEuclidean(t *testing.T) {
	m := UniformWeighted(4)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		b := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if math.Abs(m.Distance(a, b)-vec.Dist(a, b)) > 1e-12 {
			t.Fatal("uniform weighted should equal Euclidean")
		}
	}
	if m.Dim() != 4 {
		t.Errorf("Dim = %d", m.Dim())
	}
}

func TestWeightedEuclideanBounds(t *testing.T) {
	m, _ := NewWeightedEuclidean([]float64{0.25, 4})
	if m.MinWeight() != 0.25 || m.MaxWeight() != 4 {
		t.Errorf("bounds = %v, %v", m.MinWeight(), m.MaxWeight())
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64()}
		l2 := vec.Dist(a, b)
		d := m.Distance(a, b)
		lo := math.Sqrt(m.MinWeight()) * l2
		hi := math.Sqrt(m.MaxWeight()) * l2
		if d < lo-1e-9 || d > hi+1e-9 {
			t.Fatalf("weighted distance %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestQuadraticValidation(t *testing.T) {
	if _, err := NewQuadratic(vec.NewMatrix(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
	asym := vec.MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := NewQuadratic(asym); err == nil {
		t.Error("asymmetric should fail")
	}
}

func TestQuadraticIdentityEqualsEuclidean(t *testing.T) {
	m, err := NewQuadratic(vec.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if math.Abs(m.Distance(a, b)-vec.Dist(a, b)) > 1e-12 {
			t.Fatal("identity quadratic should equal Euclidean")
		}
	}
	metricAxioms(t, m, 3, 10)
}

func TestQuadraticDiagonalEqualsWeighted(t *testing.T) {
	w := []float64{2, 0.5, 3}
	diag := vec.NewMatrix(3, 3)
	for i, x := range w {
		diag.Set(i, i, x)
	}
	q, err := NewQuadratic(diag)
	if err != nil {
		t.Fatal(err)
	}
	we, _ := NewWeightedEuclidean(w)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if math.Abs(q.Distance(a, b)-we.Distance(a, b)) > 1e-12 {
			t.Fatal("diagonal quadratic should equal weighted Euclidean")
		}
	}
}

func TestQuadraticRotatedEllipsoid(t *testing.T) {
	// W = RᵀΛR for a 45° rotation: correlated quadratic distance (the
	// "rotated weighted Euclidean" the paper mentions for Mahalanobis).
	c, s := math.Cos(math.Pi/4), math.Sin(math.Pi/4)
	r := vec.MatrixFromRows([][]float64{{c, -s}, {s, c}})
	lambda := vec.MatrixFromRows([][]float64{{4, 0}, {0, 1}})
	w := r.Transpose().Mul(lambda).Mul(r)
	m, err := NewQuadratic(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	metricAxioms(t, m, 2, 12)
	// R maps (c, -s) to e1, the axis with eigenvalue 4, so along that
	// direction the unit step has distance 2; the orthogonal (c, s)
	// direction maps to e2 with eigenvalue 1.
	major := m.Distance([]float64{0, 0}, []float64{c, -s})
	if math.Abs(major-2) > 1e-9 {
		t.Errorf("major-axis distance = %v, want 2", major)
	}
	minor := m.Distance([]float64{0, 0}, []float64{c, s})
	if math.Abs(minor-1) > 1e-9 {
		t.Errorf("minor-axis distance = %v, want 1", minor)
	}
}

func TestQuadraticValidateRejectsIndefinite(t *testing.T) {
	w := vec.MatrixFromRows([][]float64{{1, 0}, {0, -1}})
	m, err := NewQuadratic(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-12); err == nil {
		t.Error("indefinite matrix should fail validation")
	}
}

func TestQuadraticParamsFlattening(t *testing.T) {
	w := vec.MatrixFromRows([][]float64{{1, 2}, {2, 3}})
	m, err := NewQuadratic(w)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(m.Params(), []float64{1, 2, 2, 3}) {
		t.Errorf("Params = %v", m.Params())
	}
	if m.Matrix().At(1, 0) != 2 {
		t.Error("Matrix accessor")
	}
}

func TestHierarchicalValidation(t *testing.T) {
	we := UniformWeighted(2)
	if _, err := NewHierarchical(nil, nil, nil); err == nil {
		t.Error("no features should fail")
	}
	if _, err := NewHierarchical([]int{2}, []Parameterized{we, we}, []float64{1}); err == nil {
		t.Error("mismatched metric count should fail")
	}
	if _, err := NewHierarchical([]int{0}, []Parameterized{we}, []float64{1}); err == nil {
		t.Error("zero-length feature should fail")
	}
	if _, err := NewHierarchical([]int{2}, []Parameterized{we}, []float64{-1}); err == nil {
		t.Error("negative feature weight should fail")
	}
}

func TestHierarchicalTwoFeatures(t *testing.T) {
	f1 := UniformWeighted(2)
	f2, _ := NewWeightedEuclidean([]float64{4})
	m, err := NewHierarchical([]int{2, 1}, []Parameterized{f1, f2}, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 3 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	a := []float64{0, 0, 0}
	b := []float64{3, 4, 2}
	// feature 1: L2 = 5, weight 1; feature 2: sqrt(4·4) = 4, weight 0.5.
	want := 5.0 + 0.5*4.0
	if got := m.Distance(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("hierarchical = %v, want %v", got, want)
	}
	metricAxioms(t, m, 3, 13)
	params := m.Params()
	// 2 feature weights + 2 + 1 per-feature weights.
	if len(params) != 5 {
		t.Errorf("Params len = %d", len(params))
	}
	if !vec.Equal(m.FeatureWeights(), []float64{1, 0.5}) {
		t.Errorf("FeatureWeights = %v", m.FeatureWeights())
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"euclidean-via-vec", func() { Euclidean{}.Distance([]float64{1}, []float64{1, 2}) }},
		{"manhattan", func() { Manhattan{}.Distance([]float64{1}, []float64{1, 2}) }},
		{"chebyshev", func() { Chebyshev{}.Distance([]float64{1}, []float64{1, 2}) }},
		{"weighted", func() { UniformWeighted(2).Distance([]float64{1}, []float64{1, 2}) }},
		{"quadratic", func() {
			m, _ := NewQuadratic(vec.Identity(2))
			m.Distance([]float64{1}, []float64{1, 2})
		}},
		{"hierarchical", func() {
			m, _ := NewHierarchical([]int{2}, []Parameterized{UniformWeighted(2)}, []float64{1})
			m.Distance([]float64{1}, []float64{1, 2})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}
