// Persistence: the reason FeedbackBypass exists is that feedback outcomes
// are "forgotten across multiple query sessions" (§1 of the paper). This
// example trains a module in one "session", saves it, loads it in a fresh
// session, verifies the predictions survived, and keeps learning on top.
// It then repeats the exercise with the durable module: inserts journaled
// to a write-ahead log, a simulated crash (no Close), and recovery via
// snapshot + WAL replay.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	feedbackbypass "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "fbsx")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "session.fbsx")

	const bins = 8
	rng := rand.New(rand.NewSource(7))

	// ---- Session 1: learn from 25 simulated feedback loops. ----
	bypass, codec, err := feedbackbypass.NewForHistograms(bins, feedbackbypass.Config{Epsilon: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	queries := make([][]float64, 25)
	for i := range queries {
		q := randomHistogram(rng, bins)
		queries[i] = q
		qp, err := codec.QueryPoint(q)
		if err != nil {
			log.Fatal(err)
		}
		// Simulated loop outcome: weight of the query's dominant bin
		// quadrupled, query point nudged toward it.
		dom := argMax(q)
		qBest := append([]float64(nil), q...)
		shift := 0.05
		if qBest[(dom+1)%bins] < shift {
			shift = qBest[(dom+1)%bins] / 2
		}
		qBest[dom] += shift
		qBest[(dom+1)%bins] -= shift
		wBest := ones(bins)
		wBest[dom] = 4
		oqp, err := codec.EncodeOQP(q, qBest, wBest)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bypass.Insert(qp, oqp); err != nil {
			log.Fatal(err)
		}
	}
	st := bypass.Stats()
	fmt.Printf("session 1: trained on %d loops, tree has %d points (depth %d)\n", len(queries), st.Points, st.Depth)
	if err := feedbackbypass.SaveFile(path, bypass); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("session 1: saved to %s (%d bytes)\n\n", filepath.Base(path), info.Size())

	// ---- Session 2: a fresh process loads the tree. ----
	restored, err := feedbackbypass.LoadFile(path, codec.P())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: loaded tree with %d points\n", restored.Stats().Points)

	// Predictions for the trained queries are identical — no feedback loop
	// needed ever again for these.
	q := queries[0]
	qp, err := codec.QueryPoint(q)
	if err != nil {
		log.Fatal(err)
	}
	before, err := bypass.Predict(qp)
	if err != nil {
		log.Fatal(err)
	}
	after, err := restored.Predict(qp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: prediction drift for a trained query: Δdelta=%.3g Δweights=%.3g\n",
		maxDiff(before.Delta, after.Delta), maxDiff(before.Weights, after.Weights))

	// And the restored module keeps learning.
	newQ := randomHistogram(rng, bins)
	newQP, err := codec.QueryPoint(newQ)
	if err != nil {
		log.Fatal(err)
	}
	w := ones(bins)
	w[2] = 9
	oqp, err := codec.EncodeOQP(newQ, newQ, w)
	if err != nil {
		log.Fatal(err)
	}
	changed, err := restored.Insert(newQP, oqp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: inserted one more loop outcome (stored=%v), tree now has %d points\n\n",
		changed, restored.Stats().Points)

	// ---- Session 3: the durable module survives a crash. ----
	// OpenDurable journals every accepted insert to a write-ahead log
	// before the tree mutates; CompactEvery folds the journal into a
	// snapshot periodically so recovery stays fast.
	stateDir := filepath.Join(dir, "durable")
	durable, err := feedbackbypass.OpenDurable(stateDir, codec.D(), codec.P(),
		feedbackbypass.Config{Epsilon: 0.01, DefaultWeights: codec.DefaultWeights()},
		feedbackbypass.DurableOptions{CompactEvery: 10})
	if err != nil {
		log.Fatal(err)
	}
	var crashQP []float64
	for i := 0; i < 15; i++ {
		q := randomHistogram(rng, bins)
		qp, err := codec.QueryPoint(q)
		if err != nil {
			log.Fatal(err)
		}
		w := ones(bins)
		w[i%bins] = 3
		oqp, err := codec.EncodeOQP(q, q, w)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := durable.Insert(qp, oqp); err != nil {
			log.Fatal(err)
		}
		crashQP = qp
	}
	lastPred, err := durable.Predict(crashQP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 3: %d inserts journaled (journal holds %d records since the last snapshot)\n",
		durable.Stats().Points, durable.Journaled())
	// Crash: the process dies here — no Close, no final snapshot. The
	// acknowledged inserts are on the journal.

	// ---- Session 4: recovery = snapshot + WAL replay. ----
	recovered, err := feedbackbypass.OpenDurable(stateDir, codec.D(), codec.P(),
		feedbackbypass.Config{Epsilon: 0.01, DefaultWeights: codec.DefaultWeights()},
		feedbackbypass.DurableOptions{CompactEvery: 10})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	recPred, err := recovered.Predict(crashQP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 4: recovered %d points; prediction drift after crash: Δdelta=%.3g Δweights=%.3g\n",
		recovered.Stats().Points,
		maxDiff(lastPred.Delta, recPred.Delta), maxDiff(lastPred.Weights, recPred.Weights))
}

func randomHistogram(rng *rand.Rand, bins int) []float64 {
	h := make([]float64, bins)
	var sum float64
	for i := range h {
		h[i] = 0.05 + rng.ExpFloat64()
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func argMax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
