// Reduced domain: the paper's future-work direction (§3) — apply
// dimensionality reduction to the query domain before learning the optimal
// query mapping. Real query streams concentrate near low-dimensional
// manifolds (images of similar scenes have similar histograms), so a PCA-
// reduced Simplex Tree reaches useful training density with far fewer
// stored points per region.
//
// This example compares a full-dimensional module against a reduced one on
// the same synthetic query stream and reports how much of the learned
// weight pattern each transfers to held-out queries.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	feedbackbypass "repro"
)

const (
	dim      = 16 // feature dimensionality
	reducedK = 2  // intrinsic manifold dimensionality
	train    = 240
	holdout  = 100
)

func main() {
	rng := rand.New(rand.NewSource(11))
	samples, labels := clusteredQueries(rng, train+holdout)

	// The stream's optimal weights depend on the cluster: cluster 0 needs
	// dimension 0 boosted, cluster 1 needs dimension 1.
	makeOQP := func(label int) feedbackbypass.OQP {
		w := ones(dim)
		if label == 0 {
			w[0] = 6
		} else {
			w[1] = 6
		}
		return feedbackbypass.OQP{Delta: zeros(dim), Weights: w}
	}

	// Full-dimensional module over the covering simplex of [0,1]^16.
	full, err := feedbackbypass.New(dim, dim, feedbackbypass.Config{
		Domain: feedbackbypass.CoveringSimplex(dim),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reduced module: PCA fitted on the training queries.
	reducer, err := feedbackbypass.FitReducer(samples[:train], reducedK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA reducer: %d → %d dimensions, %.1f%% variance explained\n",
		dim, reducedK, 100*reducer.ExplainedVariance())
	reduced, err := feedbackbypass.NewReduced(reducer, dim, dim, feedbackbypass.Config{})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < train; i++ {
		oqp := makeOQP(labels[i])
		if _, err := full.Insert(samples[i], oqp); err != nil {
			log.Fatal(err)
		}
		if _, err := reduced.Insert(samples[i], oqp); err != nil {
			log.Fatal(err)
		}
	}

	// Held-out queries: does the predicted weight pattern match the
	// cluster's true pattern?
	fullCorrect, reducedCorrect := 0, 0
	for i := train; i < train+holdout; i++ {
		wantDim0 := labels[i] == 0
		if oqp, err := full.Predict(samples[i]); err == nil {
			if (oqp.Weights[0] > oqp.Weights[1]) == wantDim0 {
				fullCorrect++
			}
		}
		oqp, err := reduced.Predict(samples[i])
		if err != nil {
			log.Fatal(err)
		}
		if (oqp.Weights[0] > oqp.Weights[1]) == wantDim0 {
			reducedCorrect++
		}
	}
	fmt.Printf("\nweight-pattern transfer on %d held-out queries:\n", holdout)
	fmt.Printf("  full %d-D domain:    %d/%d correct (tree: %d points, depth %d)\n",
		dim, fullCorrect, holdout, full.Stats().Points, full.Stats().Depth)
	fmt.Printf("  reduced %d-D domain: %d/%d correct (tree: %d points, depth %d)\n",
		reducedK, reducedCorrect, holdout, reduced.Stats().Points, reduced.Stats().Depth)
	fmt.Println("\nthe reduced tree splits each insert into", reducedK+1,
		"children instead of", dim+1, "— far denser coverage per stored point.")
}

// clusteredQueries samples query points from two clusters on a low-
// dimensional manifold in [0,1]^dim.
func clusteredQueries(rng *rand.Rand, n int) (samples [][]float64, labels []int) {
	dir := make([]float64, dim)
	for i := range dir {
		dir[i] = math.Sin(float64(i + 1))
	}
	for s := 0; s < n; s++ {
		label := s % 2
		c := 0.35
		if label == 1 {
			c = 0.65
		}
		v := make([]float64, dim)
		for i := 0; i < dim; i++ {
			v[i] = clamp01(c + 0.2*dir[i]*rng.NormFloat64()*0.3 + rng.NormFloat64()*0.01)
		}
		samples = append(samples, v)
		labels = append(labels, label)
	}
	return samples, labels
}

func clamp01(x float64) float64 { return math.Min(math.Max(x, 0), 1) }

func zeros(n int) []float64 { return make([]float64, n) }

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
