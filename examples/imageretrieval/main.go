// Image retrieval: the paper's headline scenario end to end. Builds the
// synthetic categorized image collection, attaches FeedbackBypass to the
// interactive retrieval engine, trains it on a stream of queries with
// automatic relevance feedback, and reproduces the Figure 1 comparison —
// default results vs. FeedbackBypass results — for a never-seen query.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.Config{
		Seed:       42,
		Scale:      0.15, // ≈1,500 images
		NumQueries: 250,
		K:          12,
		Epsilon:    0.05,
	}
	fmt.Printf("building collection and training on %d queries ...\n", cfg.NumQueries)
	session, err := experiments.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Run(); err != nil {
		log.Fatal(err)
	}
	stats := session.Bypass.Stats()
	fmt.Printf("collection: %d images in %d categories\n", session.DS.Len(), len(session.DS.ByCategory))
	fmt.Printf("simplex tree: %d points, depth %d\n\n", stats.Points, stats.Depth)

	// Find an illustrative never-trained Mammal query — like the paper's
	// Figure 1, this picks a query where the prediction visibly helps
	// (averages over all queries are what Figures 10–14 report).
	trained := map[int]bool{}
	for _, r := range session.Records {
		trained[r.ItemIndex] = true
	}
	var res *experiments.Figure1Result
	for _, idx := range session.DS.ByCategory["Mammal"] {
		if trained[idx] {
			continue
		}
		cand, err := experiments.Figure1(session, idx, 5)
		if err != nil {
			log.Fatal(err)
		}
		if res == nil || cand.GoodBypass-cand.GoodDefault > res.GoodBypass-res.GoodDefault {
			res = cand
		}
	}
	if res == nil {
		log.Fatal("no untrained Mammal image available; increase Scale")
	}
	queryIdx := res.QueryIndex
	fmt.Printf("query: item %d (%s), never seen by the module\n\n", res.QueryIndex, res.QueryCategory)
	fmt.Println("top-5 with default parameters:")
	for _, l := range res.DefaultTop {
		printLine(l)
	}
	fmt.Println("\ntop-5 with FeedbackBypass predicted parameters:")
	for _, l := range res.BypassTop {
		printLine(l)
	}
	fmt.Printf("\nrelevant results: %d/5 default vs %d/5 FeedbackBypass\n", res.GoodDefault, res.GoodBypass)

	// The engine-level view: how many feedback cycles does the prediction
	// save for this query?
	item := session.DS.Items[queryIdx]
	qp, err := session.Codec.QueryPoint(item.Feature)
	if err != nil {
		log.Fatal(err)
	}
	oqp, err := session.Bypass.Predict(qp)
	if err != nil {
		log.Fatal(err)
	}
	qPred, wPred, err := session.Codec.DecodeOQP(item.Feature, oqp)
	if err != nil {
		log.Fatal(err)
	}
	fromDefault, err := session.Engine.RunLoop(item.Category, item.Feature, session.Engine.UniformWeights(), cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	fromPredicted, err := session.Engine.RunLoop(item.Category, qPred, wPred, cfg.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeedback cycles to convergence: %d from default, %d from prediction (saved %d cycles ≈ %d objects)\n",
		fromDefault.Iterations, fromPredicted.Iterations,
		fromDefault.Iterations-fromPredicted.Iterations,
		(fromDefault.Iterations-fromPredicted.Iterations)*cfg.K)
}

func printLine(l experiments.ResultLine) {
	mark := " "
	if l.Good {
		mark = "*"
	}
	fmt.Printf("  %s item %-5d %-10s theme=%-10s distance=%.4f\n", mark, l.ItemIndex, l.Category, l.Theme, l.Distance)
}
