// Quickstart: the minimal FeedbackBypass workflow using only the public
// API — create a module for histogram features, store the outcome of a
// (simulated) feedback loop, and watch predictions for nearby queries
// pick it up.
package main

import (
	"fmt"
	"log"

	feedbackbypass "repro"
)

func main() {
	// A toy feature space: 4-bin normalized colour histograms. The module
	// learns in the reduced domain (3 query dimensions, 3 weight
	// parameters — Example 1 of the paper).
	bypass, codec, err := feedbackbypass.NewForHistograms(4, feedbackbypass.Config{Epsilon: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	// The user's query: mostly bin 0, some bin 1.
	query := []float64{0.55, 0.25, 0.12, 0.08}
	queryPoint, err := codec.QueryPoint(query)
	if err != nil {
		log.Fatal(err)
	}

	// Before any feedback, the module predicts the defaults.
	oqp, err := bypass.Predict(queryPoint)
	if err != nil {
		log.Fatal(err)
	}
	qOpt, weights, err := codec.DecodeOQP(query, oqp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("untrained prediction:")
	fmt.Printf("  query point: %v\n", qOpt)
	fmt.Printf("  weights:     %v\n", weights)

	// Suppose a feedback loop converged: the optimal query shifts mass to
	// bin 0, and bin 0 turns out to be four times as important.
	qBest := []float64{0.61, 0.21, 0.11, 0.07}
	wBest := []float64{4, 1, 1, 1}
	learned, err := codec.EncodeOQP(query, qBest, wBest)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bypass.Insert(queryPoint, learned); err != nil {
		log.Fatal(err)
	}

	// The same query now bypasses the loop entirely ...
	oqp, err = bypass.Predict(queryPoint)
	if err != nil {
		log.Fatal(err)
	}
	qOpt, weights, err = codec.DecodeOQP(query, oqp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter learning, same query:")
	fmt.Printf("  query point: %v\n", qOpt)
	fmt.Printf("  weights:     %v\n", weights)

	// ... and a nearby query receives an interpolated prediction between
	// the learned optimum and the domain's default corners.
	nearby := []float64{0.53, 0.27, 0.12, 0.08}
	nearbyPoint, err := codec.QueryPoint(nearby)
	if err != nil {
		log.Fatal(err)
	}
	oqp, err = bypass.Predict(nearbyPoint)
	if err != nil {
		log.Fatal(err)
	}
	qOpt, weights, err = codec.DecodeOQP(nearby, oqp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearby query:")
	fmt.Printf("  query point: %v\n", qOpt)
	fmt.Printf("  weights:     %v\n", weights)

	st := bypass.Stats()
	fmt.Printf("\ntree: %d stored point(s), %d leaves, depth %d\n", st.Points, st.Leaves, st.Depth)
}
