// Custom feedback: FeedbackBypass is orthogonal to the feedback model
// (§6 of the paper: it works "regardless of the particular mathematical
// model underlying the feedback loop"). This example runs the same
// training stream under two different relevance-feedback engines — the
// optimal MindReader rules and the older Rocchio + MARS rules — and shows
// that the module learns useful predictions either way.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/feedback"
)

func main() {
	base := experiments.Config{
		Seed:       3,
		Scale:      0.12,
		NumQueries: 200,
		K:          12,
		Epsilon:    0.05,
	}

	engines := []struct {
		name string
		opts feedback.Options
	}{
		{
			name: "optimal movement + optimal 1/sigma^2 re-weighting [ISF98]",
			opts: feedback.Options{Movement: feedback.MoveOptimal, Weighting: feedback.WeightOptimal},
		},
		{
			// NormalizeQuery keeps iterated Rocchio inside the histogram
			// domain (normalized Rocchio, [Sal88]).
			name: "Rocchio movement + MARS 1/sigma re-weighting [Sal88, RHOM98]",
			opts: feedback.Options{Movement: feedback.MoveRocchio, Weighting: feedback.WeightMARS, NormalizeQuery: true},
		},
	}

	for _, e := range engines {
		cfg := base
		cfg.Feedback = e.opts
		session, err := experiments.NewSession(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := session.Run(); err != nil {
			log.Fatal(err)
		}
		// Average the three strategies over the second half of the stream,
		// where the tree has learned something.
		half := session.Records[len(session.Records)/2:]
		var def, fb, seen float64
		for _, r := range half {
			def += r.PrecisionDefault()
			fb += r.PrecisionBypass()
			seen += r.PrecisionSeen()
		}
		n := float64(len(half))
		fmt.Printf("feedback engine: %s\n", e.name)
		fmt.Printf("  avg precision (2nd half of %d queries, k=%d):\n", cfg.NumQueries, cfg.K)
		fmt.Printf("    default                 %.3f\n", def/n)
		fmt.Printf("    FeedbackBypass          %.3f\n", fb/n)
		fmt.Printf("    converged feedback loop %.3f\n", seen/n)
		fmt.Printf("  simplex tree: %d points, depth %d\n\n",
			session.Bypass.Stats().Points, session.Bypass.Stats().Depth)
	}
	fmt.Println("FeedbackBypass improves first-round precision under both engines —")
	fmt.Println("it stores whatever parameters the loop converges to, without caring how.")
}
