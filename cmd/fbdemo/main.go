// Command fbdemo reproduces the paper's Figure 1 interactively: it trains
// FeedbackBypass on a stream of queries, then shows, for a chosen query
// image, the top results under default parameters next to the results
// under the predicted parameters.
//
// Usage:
//
//	fbdemo -category Mammal -n 5 -queries 400 -scale 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		category = flag.String("category", "Mammal", "query category to demo")
		n        = flag.Int("n", 5, "results to show")
		scale    = flag.Float64("scale", 0.3, "collection scale")
		queries  = flag.Int("queries", 400, "training queries before the demo")
		k        = flag.Int("k", 15, "k used during training")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:       *seed,
		Scale:      *scale,
		NumQueries: *queries,
		K:          *k,
		Epsilon:    0.05,
	}
	fmt.Printf("training FeedbackBypass on %d queries ...\n", *queries)
	s, err := experiments.NewSession(cfg)
	if err != nil {
		fail(err)
	}
	if err := s.Run(); err != nil {
		fail(err)
	}
	st := s.Bypass.Stats()
	fmt.Printf("tree: %d stored points, depth %d, %d leaves\n\n", st.Points, st.Depth, st.Leaves)

	// Demo on a fresh query of the requested category (one that was not in
	// the training stream if possible).
	trained := map[int]bool{}
	for _, r := range s.Records {
		trained[r.ItemIndex] = true
	}
	itemIdx := -1
	for _, idx := range s.DS.ByCategory[*category] {
		if !trained[idx] {
			itemIdx = idx
			break
		}
	}
	if itemIdx < 0 {
		if pool := s.DS.ByCategory[*category]; len(pool) > 0 {
			itemIdx = pool[0]
		} else {
			fail(fmt.Errorf("category %q has no items (have: %v)", *category, s.DS.QueryCats))
		}
	}

	res, err := experiments.Figure1(s, itemIdx, *n)
	if err != nil {
		fail(err)
	}
	fmt.Printf("query image: item %d, category %s (never seen: %v)\n\n", res.QueryIndex, res.QueryCategory, !trained[itemIdx])
	fmt.Printf("%-34s | %s\n", "Default results", "FeedbackBypass results")
	fmt.Printf("%-34s-+-%s\n", dashes(34), dashes(34))
	for i := 0; i < len(res.DefaultTop); i++ {
		fmt.Printf("%-34s | %s\n", line(res.DefaultTop[i]), line(res.BypassTop[i]))
	}
	fmt.Printf("\nrelevant (*) in top %d: default %d, FeedbackBypass %d\n", *n, res.GoodDefault, res.GoodBypass)
}

func line(l experiments.ResultLine) string {
	mark := " "
	if l.Good {
		mark = "*"
	}
	return fmt.Sprintf("%s #%-5d %-10s %-9s d=%.3f", mark, l.ItemIndex, l.Category, l.Theme, l.Distance)
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fbdemo:", err)
	os.Exit(1)
}
