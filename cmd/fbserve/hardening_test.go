package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/obsv"
	"repro/internal/service"
)

// newFaultyTestServer wires the production handler over one durable
// collection whose filesystem is the fault-injection plane, so tests can
// flip the store read-only mid-flight.
func newFaultyTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset, *faultfs.FS) {
	t.Helper()
	fs := faultfs.New(nil)
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := core.OpenDurable(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		core.DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	svc, err := service.New(eng, durable, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := &collection{name: "default", backend: "heap", source: "synth:test", ds: ds, svc: svc, durable: durable}
	srv := httptest.NewServer(hardened(newMux(map[string]*collection{"default": c}, "default", nil, false), 0, nil))
	t.Cleanup(srv.Close)
	return srv, ds, fs
}

// driveSession runs one full oracle-scored session over HTTP and returns
// the close response's status code plus headers.
func driveSession(t *testing.T, srv *httptest.Server, ds *dataset.Dataset, item int) (*http.Response, int) {
	t.Helper()
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	for rounds := 0; !st.Converged; rounds++ {
		if rounds > 100 {
			t.Fatal("session never converged")
		}
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
	}
	data, err := json.Marshal(closeRequest{Session: st.Session})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/close", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, st.Iterations
}

// TestDegradedServingHTTP: a journal disk going bad under a live server
// turns inserts into 503 + Retry-After while /healthz reports 200
// "degraded" with the root cause, /stats carries the degraded fields,
// and querying keeps working.
func TestDegradedServingHTTP(t *testing.T) {
	srv, ds, fs := newFaultyTestServer(t)

	// Healthy first: one session lands normally.
	if resp, _ := driveSession(t, srv, ds, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy close: status %d", resp.StatusCode)
	}

	// The journal disk goes bad.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: core.JournalFile, Nth: 0, Kind: faultfs.Fail})

	var sawDegraded bool
	for i := 1; i < 32 && !sawDegraded; i++ {
		resp, iters := driveSession(t, srv, ds, i)
		switch resp.StatusCode {
		case http.StatusOK:
			// ε-skipped or zero-iteration outcome: never touched the disk.
		case http.StatusServiceUnavailable:
			if iters == 0 {
				t.Fatal("zero-iteration close should not reach the store")
			}
			if ra := resp.Header.Get("Retry-After"); ra != "30" {
				t.Fatalf("degraded close Retry-After = %q, want \"30\"", ra)
			}
			sawDegraded = true
		default:
			t.Fatalf("close %d: status %d", i, resp.StatusCode)
		}
	}
	if !sawDegraded {
		t.Fatal("no session outcome reached the failing journal")
	}

	// /healthz: alive (reads work) but degraded, with the cause.
	var health struct {
		Status   string            `json:"status"`
		Degraded map[string]string `json:"degraded"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("degraded healthz: status %d", code)
	}
	if health.Status != "degraded" || health.Degraded["default"] == "" {
		t.Fatalf("degraded healthz body: %+v", health)
	}
	var scoped struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/c/default/healthz", &scoped); code != http.StatusOK {
		t.Fatalf("scoped degraded healthz: status %d", code)
	}
	if scoped.Status != "degraded" || scoped.Error == "" {
		t.Fatalf("scoped degraded healthz body: %+v", scoped)
	}

	// /stats: degraded cause and rejection counter.
	var stats statsResponse
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	def := stats.Collections["default"]
	if def.Degraded == "" || def.DegradedRejects == 0 {
		t.Fatalf("stats missing degraded fields: degraded=%q rejects=%d", def.Degraded, def.DegradedRejects)
	}

	// Predictions stay live: a fresh query opens and serves.
	item := 0
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &st); code != http.StatusOK {
		t.Fatalf("degraded query: status %d", code)
	}
}

// TestHardenedMiddleware: the panic barrier turns a handler panic into a
// 500 without killing the server, and the per-request deadline surfaces
// as 503 + Retry-After through the service's context path.
func TestHardenedMiddleware(t *testing.T) {
	reg := obsv.NewRegistry()
	h := hardened(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}), 0, reg)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	rid := rec.Header().Get("X-Request-Id")
	if rid == "" {
		t.Fatal("panicking handler: no X-Request-Id header")
	}
	var errResp errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&errResp); err != nil || errResp.Error == "" {
		t.Fatalf("panicking handler body: %v %+v", err, errResp)
	}
	if errResp.RequestID != rid {
		t.Fatalf("panic body request_id = %q, want header's %q", errResp.RequestID, rid)
	}
	if m := reg.Snapshot().Find("fb_http_panics_total"); m == nil || m.Value != 1 {
		t.Fatalf("fb_http_panics_total = %+v, want 1", m)
	}

	// A request that outlives its deadline gets the context error mapped:
	// the handler below simulates a service call observing ctx expiry.
	h = hardened(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, ok := r.Context().Deadline()
		if !ok {
			t.Error("request context has no deadline")
		}
		if until := time.Until(deadline); until > time.Minute {
			t.Errorf("deadline %v away, want <= request timeout", until)
		}
		<-r.Context().Done()
		err := fmt.Errorf("open: %w", r.Context().Err())
		writeError(w, r, statusFor(err), err)
	}), 5*time.Millisecond, reg)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired request: status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("expired request Retry-After = %q, want \"1\"", ra)
	}
	// The timeout response body names the request too.
	var toResp errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&toResp); err != nil || toResp.RequestID == "" {
		t.Fatalf("timeout body: %v %+v, want request_id set", err, toResp)
	}
	if toResp.RequestID != rec.Header().Get("X-Request-Id") {
		t.Fatalf("timeout body request_id %q != header %q", toResp.RequestID, rec.Header().Get("X-Request-Id"))
	}
	if m := reg.Snapshot().Find("fb_http_timeouts_total"); m == nil || m.Value != 1 {
		t.Fatalf("fb_http_timeouts_total = %+v, want 1", m)
	}
}
