package main

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/store"
)

func TestANNSpecParsing(t *testing.T) {
	var as annSpecs
	if err := as.add("nlist=64,nprobe=8,quant=i8,seed=7"); err != nil {
		t.Fatal(err)
	}
	if err := as.add("photos:nlist=256"); err != nil {
		t.Fatal(err)
	}
	if s := as.forName("photos"); s == nil || s.nlist != 256 || s.quant != ann.QuantF32 {
		t.Fatalf("photos spec = %+v", as.forName("photos"))
	}
	if s := as.forName("birds"); s == nil || s.nlist != 64 || s.nprobe != 8 || s.quant != ann.QuantI8 || s.seed != 7 {
		t.Fatalf("fallback spec = %+v", as.forName("birds"))
	}
	if err := as.add("nlist=10"); err == nil {
		t.Fatal("duplicate collection-wide spec accepted")
	}
	if err := as.add("photos:nlist=10"); err == nil {
		t.Fatal("duplicate per-collection spec accepted")
	}
	for _, bad := range []string{"nlist", "nlist=x", "quant=f16", "bogus=1"} {
		var fresh annSpecs
		if err := fresh.add(bad); err == nil {
			t.Fatalf("bad spec %q accepted", bad)
		}
	}
	var empty annSpecs
	if empty.forName("any") != nil {
		t.Fatal("empty specs resolved a non-nil spec")
	}
}

// TestANNServing serves a collection through a built IVF tier end to
// end: sessions open and iterate normally, and /stats names the tier.
func TestANNServing(t *testing.T) {
	cfg := serveConfig{scale: 0.05, seed: 3, k: 8, epsilon: 0.05,
		maxSessions: 16, iterBudget: 5, cacheSize: 16, shards: 1}
	if err := cfg.ann.add("nlist=16,nprobe=4"); err != nil {
		t.Fatal(err)
	}
	c, err := buildCollection("default", "synth:scale=0.05,seed=3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.ann == nil || c.annSrc != "built" {
		t.Fatalf("collection has no built ANN tier (src %q)", c.annSrc)
	}
	srv := httptest.NewServer(newMux(map[string]*collection{"default": c}, "default", nil, false))
	defer srv.Close()

	var stats struct {
		Collection struct {
			Index       string `json:"index"`
			IndexSource string `json:"index_source"`
		} `json:"collection"`
		Retrieval string `json:"retrieval"`
	}
	if code := getJSON(t, srv.URL+"/c/default/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if stats.Collection.Index != "ivf(nlist=16,nprobe=4,quant=f32)" || stats.Collection.IndexSource != "built" {
		t.Fatalf("stats index fields = %+v", stats.Collection)
	}
	if stats.Retrieval != "ivf(nlist=16,nprobe=4,quant=f32)" {
		t.Fatalf("stats retrieval = %q", stats.Retrieval)
	}

	var opened stateJSON
	item := 0
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &opened); code != 200 {
		t.Fatalf("query: %d", code)
	}
	if len(opened.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(opened.Results))
	}
	scores := make([]float64, len(opened.Results))
	for i, r := range opened.Results {
		if r.Category == opened.Results[0].Category {
			scores[i] = 1
		}
	}
	var after stateJSON
	if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: opened.Session, Scores: scores}, &after); code != 200 {
		t.Fatalf("feedback: %d", code)
	}
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: opened.Session}, nil); code != 200 {
		t.Fatalf("close: %d", code)
	}
}

// TestANNSidecarAutoload exports a collection as FBMX + FBIX, then
// builds an mmap-backed collection and checks the sidecar is loaded
// (with the -ann flag's nprobe override applied).
func TestANNSidecarAutoload(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(11, 0.05), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fbmx := filepath.Join(dir, "col.fbmx")
	if err := store.WriteFBMX(fbmx, ds.Matrix()); err != nil {
		t.Fatal(err)
	}
	idx, err := ann.Build(ds.Matrix(), ann.Options{NList: 8, NProbe: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.WriteFBIX(strings.TrimSuffix(fbmx, ".fbmx")+".fbix", idx); err != nil {
		t.Fatal(err)
	}

	cfg := serveConfig{k: 8, epsilon: 0.05, maxSessions: 16, iterBudget: 5, cacheSize: 16, shards: 1}
	if err := cfg.ann.add("nprobe=5"); err != nil {
		t.Fatal(err)
	}
	c, err := buildCollection("col", fbmx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.ann.Close()
		_ = c.mm.Close()
	}()
	if c.ann == nil || !strings.HasSuffix(c.annSrc, ".fbix") {
		t.Fatalf("sidecar not loaded (src %q)", c.annSrc)
	}
	// Sidecar structure (nlist=8) with the flag's nprobe override (5).
	if got := c.ann.Describe(); got != "ivf(nlist=8,nprobe=5,quant=f32)" {
		t.Fatalf("loaded tier = %q", got)
	}
	if c.ann.Seed() != 9 {
		t.Fatalf("sidecar seed = %d, want 9", c.ann.Seed())
	}
}
