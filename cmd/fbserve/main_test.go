package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/service"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
	"repro/internal/store"
)

// newTestCollection wires one named collection's serving stack over a
// small synthetic dataset and a durable bypass rooted in a temp dir —
// the same composition buildCollection does.
func newTestCollection(t *testing.T, name string, seed int64) (*collection, *core.DurableBypass) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(seed, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := core.OpenDurable(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	svc, err := service.New(eng, durable, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	return &collection{name: name, backend: "heap", source: "synth:test", ds: ds, svc: svc, durable: durable}, durable
}

// newTestServer wires the production handler over a single default
// collection — the legacy single-collection composition.
func newTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset, *core.DurableBypass) {
	t.Helper()
	c, durable := newTestCollection(t, "default", 5)
	srv := httptest.NewServer(newMux(map[string]*collection{"default": c}, "default", nil, false))
	t.Cleanup(srv.Close)
	return srv, c.ds, durable
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndSession drives one full interactive session over HTTP:
// query → oracle-scored feedback rounds to convergence → close, and
// verifies the converged OQPs landed in the durable bypass.
func TestEndToEndSession(t *testing.T) {
	srv, ds, durable := newTestServer(t)

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	item := 0
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if st.Session == 0 || len(st.Results) != 8 {
		t.Fatalf("query response: %+v", st)
	}
	for _, r := range st.Results {
		if r.Category == "" {
			t.Fatalf("result missing oracle annotation: %+v", r)
		}
	}

	// GET /session reflects the same state.
	var snap stateJSON
	if code := getJSON(t, fmt.Sprintf("%s/session?id=%d", srv.URL, st.Session), &snap); code != http.StatusOK {
		t.Fatalf("session: status %d", code)
	}
	if snap.Iterations != 0 || len(snap.Results) != len(st.Results) {
		t.Fatalf("session snapshot diverged: %+v", snap)
	}

	rounds := 0
	for !st.Converged {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
		if rounds++; rounds > 100 {
			t.Fatal("session never converged over HTTP")
		}
	}

	before := durable.Stats().Points
	var closed closeResponse
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: st.Session}, &closed); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if closed.Iterations != st.Iterations {
		t.Errorf("close iterations %d vs state %d", closed.Iterations, st.Iterations)
	}
	if st.Iterations > 0 {
		if !closed.Inserted {
			t.Error("refined session did not insert into the durable bypass")
		}
		if durable.Stats().Points <= before {
			t.Errorf("tree points %d did not grow past %d", durable.Stats().Points, before)
		}
		if durable.Journaled() == 0 {
			t.Error("insert was not journaled to the WAL")
		}
	}

	var stats statsResponse
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	def, ok := stats.Collections["default"]
	if !ok {
		t.Fatalf("stats missing default collection: %+v", stats)
	}
	if def.Opened != 1 || def.Closed != 1 || def.ActiveSessions != 0 {
		t.Errorf("stats after one session: %+v", def)
	}
	if def.Collection.Backend != "heap" || def.Collection.Items != ds.Len() {
		t.Errorf("collection info: %+v", def.Collection)
	}
}

// TestHTTPErrorMapping pins the sentinel→status mapping.
func TestHTTPErrorMapping(t *testing.T) {
	srv, ds, _ := newTestServer(t)

	var errResp errorResponse
	// Unknown session → 404.
	if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: 999, Scores: []float64{1}}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d (%+v)", code, errResp)
	}
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: 999}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown close: status %d", code)
	}
	// Malformed body → 400.
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	// Neither item nor feature → 400.
	if code := postJSON(t, srv.URL+"/query", queryRequest{}, &errResp); code != http.StatusBadRequest {
		t.Errorf("empty query: status %d", code)
	}
	// Out-of-range item → 400.
	bad := ds.Len() + 7
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &bad}, &errResp); code != http.StatusBadRequest {
		t.Errorf("bad item: status %d", code)
	}
	// Out-of-domain feature → 400 via core.ErrOutOfDomain.
	feat := make([]float64, ds.Dim)
	feat[0] = 2
	if code := postJSON(t, srv.URL+"/query", queryRequest{Feature: feat}, &errResp); code != http.StatusBadRequest {
		t.Errorf("out-of-domain feature: status %d", code)
	}
	// Score-count mismatch → 400 via service.ErrInvalidArgument.
	item := 0
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: []float64{1}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("score mismatch: status %d", code)
	}
	// GET on a POST route → 405.
	if code := getJSON(t, srv.URL+"/query", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d", code)
	}
}

// TestConcurrentHTTPSessions runs full sessions from parallel clients
// against one server — the serving-layer acceptance path end to end.
func TestConcurrentHTTPSessions(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < 3; s++ {
				item := (c*17 + s*31) % ds.Len()
				category := ds.Items[item].Category
				var st stateJSON
				data, _ := json.Marshal(queryRequest{Item: &item, K: 6})
				resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(data))
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					errCh <- fmt.Errorf("client %d: query status %d", c, resp.StatusCode)
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					resp.Body.Close()
					errCh <- err
					return
				}
				resp.Body.Close()
				for rounds := 0; !st.Converged && rounds < 100; rounds++ {
					scores := make([]float64, len(st.Results))
					for i, r := range st.Results {
						if r.Category == category {
							scores[i] = 1
						}
					}
					data, _ = json.Marshal(feedbackRequest{Session: st.Session, Scores: scores})
					resp, err := http.Post(srv.URL+"/feedback", "application/json", bytes.NewReader(data))
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						resp.Body.Close()
						errCh <- fmt.Errorf("client %d: feedback status %d", c, resp.StatusCode)
						return
					}
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						resp.Body.Close()
						errCh <- err
						return
					}
					resp.Body.Close()
				}
				data, _ = json.Marshal(closeRequest{Session: st.Session})
				resp, err = http.Post(srv.URL+"/close", "application/json", bytes.NewReader(data))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: close status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var stats statsResponse
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if def := stats.Collections["default"]; def.Opened != clients*3 || def.ActiveSessions != 0 {
		t.Errorf("stats after concurrent sessions: %+v", def)
	}
}

// newShardedTestServer is newTestServer over a durable 4-shard bypass.
func newShardedTestServer(t *testing.T, shards int) (*httptest.Server, *dataset.Dataset, *shardedbypass.Sharded) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shardedbypass.Open(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		shardedbypass.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	svc, err := service.New(eng, sharded, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := &collection{name: "default", backend: "heap", ds: ds, svc: svc, sharded: sharded, health: sharded}
	srv := httptest.NewServer(newMux(map[string]*collection{"default": c}, "default", nil, false))
	t.Cleanup(srv.Close)
	return srv, ds, sharded
}

// TestShardedEndToEnd drives a full session against a 4-shard durable
// bypass and checks /stats exposes the per-shard counter array.
func TestShardedEndToEnd(t *testing.T) {
	srv, ds, sharded := newShardedTestServer(t, 4)

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz on a ready sharded server: %d %+v", code, health)
	}

	item := 0
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	rounds := 0
	for !st.Converged {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
		if rounds++; rounds > 100 {
			t.Fatal("session never converged")
		}
	}
	var closed closeResponse
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: st.Session}, &closed); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}

	var statsResp statsResponse
	if code := getJSON(t, srv.URL+"/stats", &statsResp); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	stats := statsResp.Collections["default"]
	if len(stats.Shards) != 4 {
		t.Fatalf("/stats reports %d shards, want 4", len(stats.Shards))
	}
	if closed.Inserted {
		var inserts, gens int64
		for _, sh := range stats.Shards {
			inserts += sh.Inserts
			gens += int64(sh.CacheGen)
			if sh.Inserts > 0 && sh.WALBytes == 0 {
				t.Errorf("shard %d has inserts but no WAL bytes", sh.Shard)
			}
		}
		if inserts == 0 {
			t.Error("insert not visible in any shard counter")
		}
		if gens == 0 {
			t.Error("no shard cache generation moved after an insert")
		}
	}
	if sharded.Stats().Points == 0 && closed.Inserted {
		t.Error("sharded bypass empty after an inserted session")
	}
}

// fakeShardHealth stands in for a sharded bypass mid-recovery.
type fakeShardHealth struct{ readyShards []bool }

func (f *fakeShardHealth) Ready() bool {
	for _, r := range f.readyShards {
		if !r {
			return false
		}
	}
	return true
}
func (f *fakeShardHealth) Err() error     { return nil }
func (f *fakeShardHealth) NumShards() int { return len(f.readyShards) }
func (f *fakeShardHealth) ShardInfos() []shardedbypass.ShardInfo {
	out := make([]shardedbypass.ShardInfo, len(f.readyShards))
	for i, r := range f.readyShards {
		out[i] = shardedbypass.ShardInfo{Shard: i, Replaying: !r}
	}
	return out
}

// replayingBypass satisfies service.Bypass but reports every shard-routed
// operation as still replaying — the serving state during startup
// recovery.
type replayingBypass struct{ d, p int }

func (b *replayingBypass) D() int { return b.d }
func (b *replayingBypass) P() int { return b.p }
func (b *replayingBypass) Predict(q []float64) (core.OQP, error) {
	return core.OQP{}, fmt.Errorf("shard 2: %w", shardedbypass.ErrReplaying)
}
func (b *replayingBypass) Insert(q []float64, oqp core.OQP) (bool, error) {
	return false, fmt.Errorf("shard 2: %w", shardedbypass.ErrReplaying)
}
func (b *replayingBypass) Stats() simplextree.Stats { return simplextree.Stats{} }

// TestReplayingReturns503 pins the startup-recovery contract: while a
// shard is replaying, /healthz reports 503 with the replaying shard ids
// and a query routed to a replaying shard gets 503, not 500.
func TestReplayingReturns503(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(eng, &replayingBypass{d: codec.D(), p: codec.P()}, service.Options{DefaultK: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := &collection{name: "default", backend: "heap", ds: ds, svc: svc,
		health: &fakeShardHealth{readyShards: []bool{true, false, true}}}
	srv := httptest.NewServer(newMux(map[string]*collection{"default": c}, "default", nil, false))
	defer srv.Close()

	var health struct {
		Status    string           `json:"status"`
		Replaying map[string][]int `json:"replaying"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during replay: status %d, want 503", code)
	}
	if health.Status != "replaying" || len(health.Replaying["default"]) != 1 || health.Replaying["default"][0] != 1 {
		t.Fatalf("healthz body: %+v", health)
	}
	// The collection-scoped healthz reports the same replay as a plain
	// shard list.
	var scoped struct {
		Status    string `json:"status"`
		Replaying []int  `json:"replaying"`
	}
	if code := getJSON(t, srv.URL+"/c/default/healthz", &scoped); code != http.StatusServiceUnavailable {
		t.Fatalf("scoped healthz during replay: status %d, want 503", code)
	}
	if scoped.Status != "replaying" || len(scoped.Replaying) != 1 || scoped.Replaying[0] != 1 {
		t.Fatalf("scoped healthz body: %+v", scoped)
	}

	item := 0
	var errResp errorResponse
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("query against a replaying shard: status %d, want 503", code)
	}
}

// TestStatusForMapping is the table-driven sentinel→status pin: every
// errors.Is-able failure class the serving path can produce must map to
// its HTTP status, wrapped or bare — including the multi-collection 404,
// the store bounds sentinel, the governance sentinels (quota → 507,
// degraded → 503), and the per-request context failures — plus the
// Retry-After hint each retryable rejection must carry on the wire.
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		want       int
		retryAfter string // expected Retry-After header; "" = none
	}{
		{"unknown-collection", errUnknownCollection, http.StatusNotFound, ""},
		{"unknown-collection-wrapped", fmt.Errorf("%w %q", errUnknownCollection, "nope"), http.StatusNotFound, ""},
		{"session-not-found", service.ErrSessionNotFound, http.StatusNotFound, ""},
		{"session-not-found-wrapped", fmt.Errorf("service: session 7: %w", service.ErrSessionNotFound), http.StatusNotFound, ""},
		{"overloaded", service.ErrOverloaded, http.StatusTooManyRequests, "1"},
		{"overloaded-wrapped", fmt.Errorf("service: 4 sessions in flight: %w", service.ErrOverloaded), http.StatusTooManyRequests, "1"},
		{"out-of-domain", core.ErrOutOfDomain, http.StatusBadRequest, ""},
		{"out-of-domain-wrapped", fmt.Errorf("predict: %w", core.ErrOutOfDomain), http.StatusBadRequest, ""},
		{"invalid-argument", service.ErrInvalidArgument, http.StatusBadRequest, ""},
		{"store-bounds", store.ErrOutOfRange, http.StatusBadRequest, ""},
		{"store-bounds-wrapped", fmt.Errorf("dataset: %w: row 9 of 3", store.ErrOutOfRange), http.StatusBadRequest, ""},
		{"shard-replaying", shardedbypass.ErrReplaying, http.StatusServiceUnavailable, "1"},
		{"shard-replaying-wrapped", fmt.Errorf("shard 2: %w", shardedbypass.ErrReplaying), http.StatusServiceUnavailable, "1"},
		{"quota", core.ErrQuotaExceeded, http.StatusInsufficientStorage, "60"},
		{"quota-wrapped", fmt.Errorf("%w: 64 vertices stored, limit 64", core.ErrQuotaExceeded), http.StatusInsufficientStorage, "60"},
		{"degraded", core.ErrDegraded, http.StatusServiceUnavailable, "30"},
		// The real degraded error is ErrDegraded joined with its root
		// cause; both errors.Is edges must classify.
		{"degraded-joined", errors.Join(core.ErrDegraded, errors.New("write tree.fbwl: injected fault")), http.StatusServiceUnavailable, "30"},
		{"deadline", context.DeadlineExceeded, http.StatusServiceUnavailable, "1"},
		{"deadline-wrapped", fmt.Errorf("open: %w", context.DeadlineExceeded), http.StatusServiceUnavailable, "1"},
		{"client-gone", context.Canceled, statusClientClosedRequest, ""},
		{"unclassified", errors.New("disk on fire"), http.StatusInternalServerError, ""},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("%s: statusFor(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
		if got := retryAfterFor(tc.err); got != tc.retryAfter {
			t.Errorf("%s: retryAfterFor(%v) = %q, want %q", tc.name, tc.err, got, tc.retryAfter)
		}
		// writeError must put the hint on the wire, not just compute it.
		rec := httptest.NewRecorder()
		writeError(rec, httptest.NewRequest(http.MethodGet, "/", nil), tc.want, tc.err)
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("%s: Retry-After header = %q, want %q", tc.name, got, tc.retryAfter)
		}
	}
}

// newMmapTestCollection writes ds's features to a temp FBMX file and
// builds an mmap-backed collection over it, labels dropped — the
// -collection name=path.fbmx composition.
func newMmapTestCollection(t *testing.T, name string, ds *dataset.Dataset) *collection {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".fbmx")
	if err := store.WriteFBMX(path, ds.Matrix()); err != nil {
		t.Fatal(err)
	}
	mm, err := store.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	if err := mm.Verify(); err != nil {
		t.Fatal(err)
	}
	mds, err := dataset.FromBackend(mm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(mds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(mds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	byp, err := core.New(codec.D(), codec.P(), core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(eng, byp, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	return &collection{name: name, backend: "mmap", source: path, ds: mds, svc: svc, mm: mm}
}

// TestMultiCollectionServing drives one process serving two collections
// — one heap-synthetic, one mmap-resident FBMX export of a different
// seed — and asserts route scoping, per-collection stats isolation
// (sessions, caches, trees), and the unknown-collection 404.
func TestMultiCollectionServing(t *testing.T) {
	birds, _ := newTestCollection(t, "birds", 5)
	photos := newMmapTestCollection(t, "photos", birds.ds)
	colls := map[string]*collection{"birds": birds, "photos": photos}
	srv := httptest.NewServer(newMux(colls, "", nil, false))
	t.Cleanup(srv.Close)

	// Unknown collection → 404 with a JSON error.
	item := 0
	var errResp errorResponse
	if code := postJSON(t, srv.URL+"/c/nope/query", queryRequest{Item: &item, K: 5}, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown collection: status %d (%+v)", code, errResp)
	}
	if errResp.Error == "" {
		t.Error("unknown collection error body empty")
	}
	// With two collections and none named "default", bare legacy routes
	// are 404 too.
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &errResp); code != http.StatusNotFound {
		t.Fatalf("bare /query without a default collection: status %d", code)
	}

	// A full session against each collection through its scoped routes.
	sessions := map[string]uint64{}
	for name := range colls {
		var st stateJSON
		if code := postJSON(t, srv.URL+"/c/"+name+"/query", queryRequest{Item: &item, K: 5}, &st); code != http.StatusOK {
			t.Fatalf("%s query: status %d", name, code)
		}
		if st.Collection != name || len(st.Results) != 5 {
			t.Fatalf("%s query response: %+v", name, st)
		}
		sessions[name] = st.Session
	}
	// The mmap collection answers with bitwise-identical distances to
	// its heap twin: same features, same kernels, different residency.
	var heapSt, mmapSt stateJSON
	if code := postJSON(t, srv.URL+"/c/birds/query", queryRequest{Item: &item, K: 5}, &heapSt); code != http.StatusOK {
		t.Fatal("birds re-query failed")
	}
	if code := postJSON(t, srv.URL+"/c/photos/query", queryRequest{Item: &item, K: 5}, &mmapSt); code != http.StatusOK {
		t.Fatal("photos re-query failed")
	}
	for i := range heapSt.Results {
		if heapSt.Results[i].Index != mmapSt.Results[i].Index || heapSt.Results[i].Distance != mmapSt.Results[i].Distance {
			t.Fatalf("result %d diverges across backends: %+v vs %+v", i, heapSt.Results[i], mmapSt.Results[i])
		}
	}

	// Session ids are scoped per collection: photos' session is unknown
	// to birds.
	if code := postJSON(t, srv.URL+"/c/birds/close", closeRequest{Session: sessions["photos"]}, &errResp); code != http.StatusNotFound &&
		sessions["photos"] != sessions["birds"] {
		t.Errorf("cross-collection session id accepted: status %d", code)
	}

	// Give feedback in birds only; stats must show the activity (and the
	// insert, if any) in birds alone. photos keeps its own counters.
	category := birds.ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/c/birds/query", queryRequest{Item: &item, K: 5}, &st); code != http.StatusOK {
		t.Fatal("birds query failed")
	}
	for rounds := 0; !st.Converged && rounds < 100; rounds++ {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/c/birds/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("birds feedback: status %d", code)
		}
	}
	var closed closeResponse
	if code := postJSON(t, srv.URL+"/c/birds/close", closeRequest{Session: st.Session}, &closed); code != http.StatusOK {
		t.Fatalf("birds close: status %d", code)
	}
	if closed.Collection != "birds" {
		t.Errorf("close response names collection %q", closed.Collection)
	}

	var stats statsResponse
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if len(stats.Collections) != 2 {
		t.Fatalf("stats cover %d collections, want 2", len(stats.Collections))
	}
	b, p := stats.Collections["birds"], stats.Collections["photos"]
	if b.Collection.Backend != "heap" || p.Collection.Backend != "mmap" {
		t.Errorf("backends: birds=%s photos=%s", b.Collection.Backend, p.Collection.Backend)
	}
	if b.Feedbacks == 0 {
		t.Error("birds feedback rounds not counted")
	}
	if p.Feedbacks != 0 {
		t.Errorf("photos counted %d feedbacks from birds' session", p.Feedbacks)
	}
	if b.Tree.Points > 0 && p.Tree.Points != 0 {
		t.Error("birds' insert leaked into photos' tree")
	}
	if p.Opened != 2 {
		t.Errorf("photos opened %d sessions, want 2", p.Opened)
	}

	// Per-collection stats and healthz routes answer scoped.
	var one collectionStats
	if code := getJSON(t, srv.URL+"/c/photos/stats", &one); code != http.StatusOK {
		t.Fatalf("/c/photos/stats: status %d", code)
	}
	if one.Collection.Name != "photos" || one.Opened != p.Opened {
		t.Errorf("scoped stats: %+v", one.Collection)
	}
	var health struct {
		Status     string `json:"status"`
		Collection string `json:"collection"`
	}
	if code := getJSON(t, srv.URL+"/c/photos/healthz", &health); code != http.StatusOK || health.Collection != "photos" {
		t.Errorf("scoped healthz: %d %+v", code, health)
	}
}

// TestLayoutFlipRefused pins the durable-layout migration guard: module
// state written under one collection-count layout must not be silently
// shadowed when the process is restarted with the other layout.
func TestLayoutFlipRefused(t *testing.T) {
	base := serveConfig{
		scale: 0.02, seed: 3, k: 5, epsilon: 0.05,
		compactEach: 512, maxSessions: 16, iterBudget: 5, cacheSize: 16, shards: 1,
	}
	spec := "synth:scale=0.02,seed=3"

	// Flat layout first (single collection), then reopen as multi: the
	// root module state must be refused, not shadowed by dir/birds/.
	flat := base
	flat.dir = t.TempDir()
	c, err := buildCollection("birds", spec, flat)
	if err != nil {
		t.Fatal(err)
	}
	if c.durable == nil {
		t.Fatal("single-collection durable build has no durable handle")
	}
	c.durable.Close()
	flatMulti := flat
	flatMulti.multi = true
	if _, err := buildCollection("birds", spec, flatMulti); err == nil {
		t.Fatal("multi-collection reopen over flat module state was accepted")
	}

	// Nested layout first (multi), then reopen as single: the nested
	// module must be refused rather than ignored in favour of a fresh
	// module at the root.
	nested := base
	nested.dir = t.TempDir()
	nested.multi = true
	c2, err := buildCollection("birds", spec, nested)
	if err != nil {
		t.Fatal(err)
	}
	c2.durable.Close()
	nestedSingle := nested
	nestedSingle.multi = false
	if _, err := buildCollection("birds", spec, nestedSingle); err == nil {
		t.Fatal("single-collection reopen over nested module state was accepted")
	}

	// A fresh directory in either layout still opens fine.
	fresh := base
	fresh.dir = t.TempDir()
	fresh.multi = true
	c3, err := buildCollection("birds", spec, fresh)
	if err != nil {
		t.Fatalf("fresh multi-layout build refused: %v", err)
	}
	c3.durable.Close()
}

// TestCollectionSpecParsing pins the -collection flag grammar.
func TestCollectionSpecParsing(t *testing.T) {
	var cs collectionSpecs
	for _, ok := range []string{"a=synth:", "b-2=synth:scale=0.1,seed=9", "c_x=/data/f.fbmx", "d=fbmx:/data/f"} {
		if err := cs.add(ok); err != nil {
			t.Errorf("add(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "noequals", "=spec", "name=", "a=synth:", "sp ace=synth:", "a/b=synth:"} {
		if err := cs.add(bad); err == nil {
			t.Errorf("add(%q) accepted", bad)
		}
	}
	cfg := serveConfig{scale: 0.05, seed: 3}
	if _, _, _, err := buildDataset("synth:scale=bogus", cfg); err == nil {
		t.Error("bogus synth scale accepted")
	}
	if _, _, _, err := buildDataset("synth:rows=5", cfg); err == nil {
		t.Error("unknown synth key accepted")
	}
	if _, _, _, err := buildDataset("plainpath", cfg); err == nil {
		t.Error("pathless spec accepted")
	}
	if _, _, _, err := buildDataset(filepath.Join(t.TempDir(), "missing.fbmx"), cfg); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing fbmx file: %v", err)
	}
	ds, backend, mm, err := buildDataset("synth:scale=0.02,seed=4", cfg)
	if err != nil || backend != "heap" || mm != nil || ds.Len() == 0 {
		t.Fatalf("synth build: %v %s %v", err, backend, mm)
	}
	path := filepath.Join(t.TempDir(), "c.fbmx")
	if err := store.WriteFBMX(path, ds.Matrix()); err != nil {
		t.Fatal(err)
	}
	mds, backend, mm, err := buildDataset(path, cfg)
	if err != nil || backend != "mmap" || mm == nil {
		t.Fatalf("fbmx build: %v %s", err, backend)
	}
	defer mm.Close()
	if mds.Len() != ds.Len() || mds.Dim != ds.Dim {
		t.Errorf("fbmx dataset shape %dx%d, want %dx%d", mds.Len(), mds.Dim, ds.Len(), ds.Dim)
	}
}
