package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/service"
	"repro/internal/shardedbypass"
	"repro/internal/simplextree"
)

// newTestServer wires the production handler over a small collection and
// a durable bypass rooted in a temp dir — the same composition main does.
func newTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset, *core.DurableBypass) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := core.OpenDurable(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	svc, err := service.New(eng, durable, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(svc, nil))
	t.Cleanup(srv.Close)
	return srv, ds, durable
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndSession drives one full interactive session over HTTP:
// query → oracle-scored feedback rounds to convergence → close, and
// verifies the converged OQPs landed in the durable bypass.
func TestEndToEndSession(t *testing.T) {
	srv, ds, durable := newTestServer(t)

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}

	item := 0
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if st.Session == 0 || len(st.Results) != 8 {
		t.Fatalf("query response: %+v", st)
	}
	for _, r := range st.Results {
		if r.Category == "" {
			t.Fatalf("result missing oracle annotation: %+v", r)
		}
	}

	// GET /session reflects the same state.
	var snap stateJSON
	if code := getJSON(t, fmt.Sprintf("%s/session?id=%d", srv.URL, st.Session), &snap); code != http.StatusOK {
		t.Fatalf("session: status %d", code)
	}
	if snap.Iterations != 0 || len(snap.Results) != len(st.Results) {
		t.Fatalf("session snapshot diverged: %+v", snap)
	}

	rounds := 0
	for !st.Converged {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
		if rounds++; rounds > 100 {
			t.Fatal("session never converged over HTTP")
		}
	}

	before := durable.Stats().Points
	var closed closeResponse
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: st.Session}, &closed); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if closed.Iterations != st.Iterations {
		t.Errorf("close iterations %d vs state %d", closed.Iterations, st.Iterations)
	}
	if st.Iterations > 0 {
		if !closed.Inserted {
			t.Error("refined session did not insert into the durable bypass")
		}
		if durable.Stats().Points <= before {
			t.Errorf("tree points %d did not grow past %d", durable.Stats().Points, before)
		}
		if durable.Journaled() == 0 {
			t.Error("insert was not journaled to the WAL")
		}
	}

	var stats service.Stats
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Opened != 1 || stats.Closed != 1 || stats.ActiveSessions != 0 {
		t.Errorf("stats after one session: %+v", stats)
	}
}

// TestHTTPErrorMapping pins the sentinel→status mapping.
func TestHTTPErrorMapping(t *testing.T) {
	srv, ds, _ := newTestServer(t)

	var errResp errorResponse
	// Unknown session → 404.
	if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: 999, Scores: []float64{1}}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d (%+v)", code, errResp)
	}
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: 999}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown close: status %d", code)
	}
	// Malformed body → 400.
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	// Neither item nor feature → 400.
	if code := postJSON(t, srv.URL+"/query", queryRequest{}, &errResp); code != http.StatusBadRequest {
		t.Errorf("empty query: status %d", code)
	}
	// Out-of-range item → 400.
	bad := ds.Len() + 7
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &bad}, &errResp); code != http.StatusBadRequest {
		t.Errorf("bad item: status %d", code)
	}
	// Out-of-domain feature → 400 via core.ErrOutOfDomain.
	feat := make([]float64, ds.Dim)
	feat[0] = 2
	if code := postJSON(t, srv.URL+"/query", queryRequest{Feature: feat}, &errResp); code != http.StatusBadRequest {
		t.Errorf("out-of-domain feature: status %d", code)
	}
	// Score-count mismatch → 400 via service.ErrInvalidArgument.
	item := 0
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: []float64{1}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("score mismatch: status %d", code)
	}
	// GET on a POST route → 405.
	if code := getJSON(t, srv.URL+"/query", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d", code)
	}
}

// TestConcurrentHTTPSessions runs full sessions from parallel clients
// against one server — the serving-layer acceptance path end to end.
func TestConcurrentHTTPSessions(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < 3; s++ {
				item := (c*17 + s*31) % ds.Len()
				category := ds.Items[item].Category
				var st stateJSON
				data, _ := json.Marshal(queryRequest{Item: &item, K: 6})
				resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(data))
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					errCh <- fmt.Errorf("client %d: query status %d", c, resp.StatusCode)
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					resp.Body.Close()
					errCh <- err
					return
				}
				resp.Body.Close()
				for rounds := 0; !st.Converged && rounds < 100; rounds++ {
					scores := make([]float64, len(st.Results))
					for i, r := range st.Results {
						if r.Category == category {
							scores[i] = 1
						}
					}
					data, _ = json.Marshal(feedbackRequest{Session: st.Session, Scores: scores})
					resp, err := http.Post(srv.URL+"/feedback", "application/json", bytes.NewReader(data))
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						resp.Body.Close()
						errCh <- fmt.Errorf("client %d: feedback status %d", c, resp.StatusCode)
						return
					}
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						resp.Body.Close()
						errCh <- err
						return
					}
					resp.Body.Close()
				}
				data, _ = json.Marshal(closeRequest{Session: st.Session})
				resp, err = http.Post(srv.URL+"/close", "application/json", bytes.NewReader(data))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: close status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var stats service.Stats
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Opened != clients*3 || stats.ActiveSessions != 0 {
		t.Errorf("stats after concurrent sessions: %+v", stats)
	}
}

// newShardedTestServer is newTestServer over a durable 4-shard bypass.
func newShardedTestServer(t *testing.T, shards int) (*httptest.Server, *dataset.Dataset, *shardedbypass.Sharded) {
	t.Helper()
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shardedbypass.Open(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		shardedbypass.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	svc, err := service.New(eng, sharded, service.Options{DefaultK: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(svc, sharded))
	t.Cleanup(srv.Close)
	return srv, ds, sharded
}

// TestShardedEndToEnd drives a full session against a 4-shard durable
// bypass and checks /stats exposes the per-shard counter array.
func TestShardedEndToEnd(t *testing.T) {
	srv, ds, sharded := newShardedTestServer(t, 4)

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz on a ready sharded server: %d %+v", code, health)
	}

	item := 0
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	rounds := 0
	for !st.Converged {
		scores := make([]float64, len(st.Results))
		for i, r := range st.Results {
			if r.Category == category {
				scores[i] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
		if rounds++; rounds > 100 {
			t.Fatal("session never converged")
		}
	}
	var closed closeResponse
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: st.Session}, &closed); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}

	var stats service.Stats
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("/stats reports %d shards, want 4", len(stats.Shards))
	}
	if closed.Inserted {
		var inserts, gens int64
		for _, sh := range stats.Shards {
			inserts += sh.Inserts
			gens += int64(sh.CacheGen)
			if sh.Inserts > 0 && sh.WALBytes == 0 {
				t.Errorf("shard %d has inserts but no WAL bytes", sh.Shard)
			}
		}
		if inserts == 0 {
			t.Error("insert not visible in any shard counter")
		}
		if gens == 0 {
			t.Error("no shard cache generation moved after an insert")
		}
	}
	if sharded.Stats().Points == 0 && closed.Inserted {
		t.Error("sharded bypass empty after an inserted session")
	}
}

// fakeShardHealth stands in for a sharded bypass mid-recovery.
type fakeShardHealth struct{ readyShards []bool }

func (f *fakeShardHealth) Ready() bool {
	for _, r := range f.readyShards {
		if !r {
			return false
		}
	}
	return true
}
func (f *fakeShardHealth) Err() error     { return nil }
func (f *fakeShardHealth) NumShards() int { return len(f.readyShards) }
func (f *fakeShardHealth) ShardInfos() []shardedbypass.ShardInfo {
	out := make([]shardedbypass.ShardInfo, len(f.readyShards))
	for i, r := range f.readyShards {
		out[i] = shardedbypass.ShardInfo{Shard: i, Replaying: !r}
	}
	return out
}

// replayingBypass satisfies service.Bypass but reports every shard-routed
// operation as still replaying — the serving state during startup
// recovery.
type replayingBypass struct{ d, p int }

func (b *replayingBypass) D() int { return b.d }
func (b *replayingBypass) P() int { return b.p }
func (b *replayingBypass) Predict(q []float64) (core.OQP, error) {
	return core.OQP{}, fmt.Errorf("shard 2: %w", shardedbypass.ErrReplaying)
}
func (b *replayingBypass) Insert(q []float64, oqp core.OQP) (bool, error) {
	return false, fmt.Errorf("shard 2: %w", shardedbypass.ErrReplaying)
}
func (b *replayingBypass) Stats() simplextree.Stats { return simplextree.Stats{} }

// TestReplayingReturns503 pins the startup-recovery contract: while a
// shard is replaying, /healthz reports 503 with the replaying shard ids
// and a query routed to a replaying shard gets 503, not 500.
func TestReplayingReturns503(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(5, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(eng, &replayingBypass{d: codec.D(), p: codec.P()}, service.Options{DefaultK: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(svc, &fakeShardHealth{readyShards: []bool{true, false, true}}))
	defer srv.Close()

	var health struct {
		Status    string `json:"status"`
		Replaying []int  `json:"replaying"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during replay: status %d, want 503", code)
	}
	if health.Status != "replaying" || len(health.Replaying) != 1 || health.Replaying[0] != 1 {
		t.Fatalf("healthz body: %+v", health)
	}

	item := 0
	var errResp errorResponse
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 5}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("query against a replaying shard: status %d, want 503", code)
	}
}
