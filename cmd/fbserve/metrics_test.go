package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/obsv"
	"repro/internal/service"
)

// newInstrumentedTestServer wires the production handler over one
// durable collection with the observability plane attached end to end —
// the same composition buildCollection does when -addr serving starts.
func newInstrumentedTestServer(t *testing.T, pprofOn bool) (*httptest.Server, *dataset.Dataset, *obsv.Registry) {
	t.Helper()
	reg := obsv.NewRegistry()
	registerProcessMetrics(reg)
	labels := []obsv.Label{obsv.L("collection", "default")}
	ds, err := dataset.Build(imagegen.IMSILike(7, 0.03), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	durable, err := core.OpenDurable(t.TempDir(), codec.D(), codec.P(),
		core.Config{Epsilon: 0.05, DefaultWeights: codec.DefaultWeights()},
		core.DurableOptions{Obs: reg, ObsLabels: labels})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	svc, err := service.New(eng, durable, service.Options{DefaultK: 8, Obs: reg, ObsLabels: labels})
	if err != nil {
		t.Fatal(err)
	}
	c := &collection{name: "default", backend: "heap", source: "synth:test", ds: ds, svc: svc, durable: durable}
	srv := httptest.NewServer(hardened(newMux(map[string]*collection{"default": c}, "default", reg, pprofOn), 0, reg))
	t.Cleanup(srv.Close)
	return srv, ds, reg
}

// TestMetricsEndpoint drives real traffic through the instrumented
// stack and checks /metrics exposes the key series from every layer:
// service request path, WAL, and process runtime.
func TestMetricsEndpoint(t *testing.T) {
	srv, ds, _ := newInstrumentedTestServer(t, false)

	// One full session so service + WAL instruments have observations.
	item := 0
	category := ds.Items[item].Category
	var st stateJSON
	if code := postJSON(t, srv.URL+"/query", queryRequest{Item: &item, K: 8}, &st); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	for i := 0; i < 10 && !st.Converged; i++ {
		scores := make([]float64, len(st.Results))
		for j, r := range st.Results {
			if r.Category == category {
				scores[j] = 1
			}
		}
		if code := postJSON(t, srv.URL+"/feedback", feedbackRequest{Session: st.Session, Scores: scores}, &st); code != http.StatusOK {
			t.Fatalf("feedback: status %d", code)
		}
	}
	if code := postJSON(t, srv.URL+"/close", closeRequest{Session: st.Session}, nil); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`fb_service_requests_total{collection="default",op="open",outcome="ok"} 1`,
		`fb_service_request_seconds_bucket{collection="default",op="open",le="+Inf"} 1`,
		`fb_service_requests_total{collection="default",op="close",outcome="ok"} 1`,
		`fb_service_cache_requests_total{collection="default",result="miss"}`,
		`fb_wal_append_seconds_count{collection="default"}`,
		`fb_service_sessions_active{collection="default"} 0`,
		`fb_process_goroutines`,
		`fb_process_start_time_seconds`,
		"# TYPE fb_service_request_seconds histogram",
		"# TYPE fb_service_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRequestIDOnSuccess: every hardened response carries X-Request-Id,
// not just errors, and IDs differ between requests.
func TestRequestIDOnSuccess(t *testing.T) {
	srv, _, _ := newInstrumentedTestServer(t, false)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		rid := resp.Header.Get("X-Request-Id")
		if rid == "" {
			t.Fatal("healthz response without X-Request-Id")
		}
		if seen[rid] {
			t.Fatalf("duplicate request id %q", rid)
		}
		seen[rid] = true
	}
}

// TestStatsServerInfo: /stats and /healthz surface the process identity
// block (start time, go version, pid).
func TestStatsServerInfo(t *testing.T) {
	srv, _, _ := newInstrumentedTestServer(t, false)
	var stats statsResponse
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Server.StartTime == "" || stats.Server.GoVersion == "" || stats.Server.PID == 0 {
		t.Fatalf("stats server info incomplete: %+v", stats.Server)
	}
	if stats.Server.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", stats.Server)
	}
	var health struct {
		Server serverInfo `json:"server"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Server.PID == 0 || health.Server.GoVersion == "" {
		t.Fatalf("healthz server info incomplete: %+v", health.Server)
	}
}

// TestPprofGating: /debug/pprof is 404 unless -pprof was passed.
func TestPprofGating(t *testing.T) {
	off, _, _ := newInstrumentedTestServer(t, false)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on, _, _ := newInstrumentedTestServer(t, true)
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof on: status %d, body %.80s", resp.StatusCode, body)
	}
}
