// Command fbserve is the FeedbackBypass network service: a long-lived
// HTTP/JSON server placing the learned Mopt beside interactive
// retrieval engines (Figure 4 of the paper) and serving many concurrent
// user sessions — over one or several named collections — through
// internal/service.
//
// Collections. One process serves any number of named collections, each
// with its own retrieval engine, bypass (and durable directory), and
// prediction cache. -collection name=spec is repeatable; a spec is
// either
//
//	synth:scale=0.3,seed=7   a generated in-heap collection, or
//	/data/photos.fbmx        an FBMX collection file (also fbmx:path),
//	                         opened read-only via mmap so the feature
//	                         slab lives in the page cache, not the heap
//
// With no -collection flags the server runs one collection named
// "default" built from -scale/-seed, exactly the pre-multi-collection
// behaviour.
//
// Endpoints (per collection under /c/<name>/..., with the bare legacy
// paths routed to the default collection):
//
//	GET  /healthz             liveness across all collections
//	GET  /stats               per-collection counters, cache occupancy, tree shape
//	GET  /c/N/healthz         one collection's liveness
//	GET  /c/N/stats           one collection's counters
//	POST /c/N/query           open a session: {"item": 3, "k": 5} or
//	                          {"feature": [...], "k": 5} → first results + session id
//	GET  /c/N/session?id=S    current session state without advancing it
//	POST /c/N/feedback        {"session": S, "scores": [1,0,...]} → refined results
//	POST /c/N/close           {"session": S} → converged OQPs inserted into the bypass
//
// Session ids are scoped to their collection. An unknown collection
// name is 404. Results carry each item's category and theme so a client
// (or a human with curl) can play the relevance oracle (FBMX-backed
// collections carry empty labels; their sessions are scored by the
// client). On SIGINT/SIGTERM the server stops accepting connections,
// drains every collection's in-flight sessions (inserting converged
// outcomes), and — for durable collections — compacts the write-ahead
// logs before exiting.
//
// Usage:
//
//	fbserve -addr :8080 -scale 0.3 -k 10                  # in-memory
//	fbserve -addr :8080 -dir /var/lib/fbserve -sync       # durable
//	fbserve -addr :8080 -dir /var/lib/fbserve -shards 8   # sharded
//	fbserve -addr :8080 \
//	    -collection birds=synth:scale=0.2,seed=7 \
//	    -collection photos=/data/photos.fbmx \
//	    -dir /var/lib/fbserve                             # multi-collection
//
// With several collections and -dir, each collection's durable state
// lives under <dir>/<name>/ (a single collection keeps the whole dir,
// preserving existing layouts). -shards S > 1 partitions every
// collection's bypass across S independent Simplex Trees (see
// internal/shardedbypass); the shard count is baked into each module
// directory's manifest, so reopening with a different -shards is
// refused.
//
// -export-fbmx name=path builds the named collection, writes its
// feature matrix to path as an FBMX file (atomically), and exits — the
// way to turn a synthetic collection into an mmap-servable file.
//
// Approximate retrieval. -ann [name:]nlist=N,nprobe=N[,quant=f32|i8]
// [,seed=N] puts an IVF index (internal/ann) in front of a collection's
// exact scan: queries probe the nprobe nearest partitions through a
// quantized slab and exact-rerank the shortlist, trading a bounded
// recall loss for a large bandwidth reduction (nprobe=nlist reproduces
// the exact scan bit for bit). A bare spec applies to every collection;
// name-prefixed specs win for their collection. An FBMX-backed
// collection automatically loads an FBIX sidecar sitting next to its
// file (photos.fbmx → photos.fbix); the sidecar's trained structure
// wins, with the flag's nprobe applied as the tuning override.
// -export-fbix name=path trains the named collection's index (per -ann,
// or defaults) and writes the sidecar, then exits. /stats reports the
// active tier per collection (collection.index, retrieval).
package main

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/obsv"
	"repro/internal/service"
	"repro/internal/shardedbypass"
	"repro/internal/store"
)

// processStart anchors the uptime reported by /stats and /healthz.
var processStart = time.Now()

// Request IDs: a per-process random prefix plus an atomic counter, so
// every response (including timeouts and panics) is correlatable in logs
// without coordination and without math/rand in a pinned-determinism
// repo. The prefix is drawn once at startup.
var (
	ridPrefix  = newRIDPrefix()
	ridCounter atomic.Uint64
)

func newRIDPrefix() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// A broken entropy source should not stop the server; PID keeps
		// prefixes distinct across processes well enough for logs.
		return fmt.Sprintf("%08x", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

// newRequestID returns a process-unique request ID like "3fa9c12b-42".
func newRequestID() string {
	return fmt.Sprintf("%s-%d", ridPrefix, ridCounter.Add(1))
}

// ridKey carries the request ID through the request context so every
// error body can echo it.
type ridKey struct{}

// requestIDFrom extracts the request ID, "" when the request did not
// pass through hardened (direct handler tests).
func requestIDFrom(r *http.Request) string {
	if r == nil {
		return ""
	}
	id, _ := r.Context().Value(ridKey{}).(string)
	return id
}

// errUnknownCollection is the sentinel behind the 404 for routes naming
// a collection this process does not serve.
var errUnknownCollection = errors.New("fbserve: unknown collection")

// serveConfig carries the flag values every collection build needs.
type serveConfig struct {
	scale       float64
	seed        int64
	k           int
	epsilon     float64
	dir         string
	syncWAL     bool
	compactEach int
	maxSessions int
	iterBudget  int
	cacheSize   int
	shards      int
	maxVertices int
	maxBytes    int64
	ageHorizon  uint64
	multi       bool     // more than one collection: durable state nests under dir/<name>/
	ann         annSpecs // -ann flags: approximate retrieval tiers per collection
	obs         *obsv.Registry
}

// annSpec is one parsed -ann flag: the IVF build/probe parameters for a
// collection's approximate retrieval tier.
type annSpec struct {
	nlist, nprobe int
	quant         ann.Quant
	seed          int64
}

// annSpecs accumulates repeated -ann flags: a bare spec applies to every
// collection, a name-prefixed spec to that collection only (and
// overrides a bare one).
type annSpecs struct {
	def    *annSpec
	byName map[string]annSpec
}

func (a *annSpecs) add(value string) error {
	name := ""
	spec := value
	// "photos:nlist=256,..." — a collection prefix is everything before
	// the first ':' as long as no '=' precedes it.
	if i := strings.IndexAny(value, ":="); i >= 0 && value[i] == ':' {
		name, spec = value[:i], value[i+1:]
	}
	var s annSpec
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("ann spec: want key=value, got %q", kv)
		}
		var err error
		switch key {
		case "nlist":
			s.nlist, err = strconv.Atoi(val)
		case "nprobe":
			s.nprobe, err = strconv.Atoi(val)
		case "quant":
			s.quant, err = ann.ParseQuant(val)
		case "seed":
			s.seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown ann parameter %q", key)
		}
		if err != nil {
			return fmt.Errorf("ann spec %q: %w", kv, err)
		}
	}
	if name == "" {
		if a.def != nil {
			return errors.New("ann spec: duplicate collection-wide -ann flag")
		}
		a.def = &s
		return nil
	}
	if a.byName == nil {
		a.byName = make(map[string]annSpec)
	}
	if _, dup := a.byName[name]; dup {
		return fmt.Errorf("ann spec: duplicate -ann flag for collection %q", name)
	}
	a.byName[name] = s
	return nil
}

// forName resolves the spec applying to a collection: its own, else the
// collection-wide one, else nil.
func (a *annSpecs) forName(name string) *annSpec {
	if s, ok := a.byName[name]; ok {
		return &s
	}
	return a.def
}

// serverTimeouts carries the http.Server hardening knobs. Every one
// defaults non-zero: a server with unlimited header/body/write time holds
// a goroutine and a connection per stalled client forever (slowloris).
type serverTimeouts struct {
	readHeader time.Duration // time to read request headers
	read       time.Duration // time to read the full request
	write      time.Duration // time from end-of-headers to last response byte
	idle       time.Duration // keep-alive idle limit
	request    time.Duration // per-request handler deadline (context); 0 disables
}

// collection is one named collection's full serving stack: dataset over
// its backend, retrieval engine, bypass (with optional durable/sharded
// handles for shutdown), and its own service — sessions, prediction
// cache and admission control are all per collection.
type collection struct {
	name    string
	backend string // "heap" or "mmap"
	source  string // the spec it was built from
	ds      *dataset.Dataset
	svc     *service.Service
	health  shardHealth            // non-nil when the bypass is sharded
	durable *core.DurableBypass    // shutdown handle (nil unless durable unsharded)
	sharded *shardedbypass.Sharded // shutdown handle (nil unless sharded)
	mm      *store.MmapMatrix      // close handle (nil unless FBMX-backed)
	ann     *ann.Index             // approximate retrieval tier (nil = exact scan)
	annSrc  string                 // "built" or the loaded sidecar path
}

// collectionSpecs accumulates repeated -collection flags in order.
type collectionSpecs []struct{ name, spec string }

func (cs *collectionSpecs) add(value string) error {
	name, spec, ok := strings.Cut(value, "=")
	if !ok || name == "" || spec == "" {
		return fmt.Errorf("want name=spec, got %q", value)
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return fmt.Errorf("collection name %q: only [a-zA-Z0-9_-] allowed", name)
		}
	}
	for _, c := range *cs {
		if c.name == name {
			return fmt.Errorf("duplicate collection %q", name)
		}
	}
	*cs = append(*cs, struct{ name, spec string }{name, spec})
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		scale       = flag.Float64("scale", 0.3, "collection scale (1 = the paper's ~10,000 images)")
		seed        = flag.Int64("seed", 1, "random seed for the synthetic collection")
		k           = flag.Int("k", 10, "default results per query")
		epsilon     = flag.Float64("epsilon", 0.05, "Simplex Tree insert threshold ε")
		dir         = flag.String("dir", "", "durable module directory (WAL + snapshots); empty = in-memory")
		syncWAL     = flag.Bool("sync", false, "fsync the WAL on every accepted insert (durable mode)")
		compactEach = flag.Int("compact-every", 512, "compact the WAL after this many journaled inserts (durable mode)")
		maxSessions = flag.Int("max-sessions", 1024, "in-flight session bound per collection (further opens get 429)")
		iterBudget  = flag.Int("iter-budget", engine.DefaultMaxIterations, "feedback rounds allowed per session")
		cacheSize   = flag.Int("cache", 1024, "LRU prediction cache entries per collection (negative disables)")
		shards      = flag.Int("shards", 1, "partition each bypass across this many independent Simplex Trees (1 = single-tree compatibility mode)")
		exportFBMX  = flag.String("export-fbmx", "", "name=path: write the named collection's feature matrix as an FBMX file and exit")
		exportFBIX  = flag.String("export-fbix", "", "name=path: build the named collection's IVF index (per -ann, or defaults) and write it as an FBIX sidecar, then exit")
		maxVertices = flag.Int("max-vertices", 0, "per-collection Simplex Tree vertex quota; at the bound inserts get 507, reads stay live (0 = unlimited)")
		maxBytes    = flag.Int64("max-bytes", 0, "per-collection tree heap-footprint quota in bytes; same 507 semantics (0 = unlimited)")
		ageHorizon  = flag.Uint64("age-horizon", 0, "reclaim vertices not reinforced within this many accepted inserts; compaction drops them (0 = aging off)")
		compactInt  = flag.Duration("compact-interval", 0, "run an aging compaction pass over every collection at this interval (0 = only on quota pressure)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints expose internals)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server.ReadHeaderTimeout (0 disables)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server.ReadTimeout (0 disables)")
		writeTimeout      = flag.Duration("write-timeout", 30*time.Second, "http.Server.WriteTimeout (0 disables)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout for keep-alive connections (0 disables)")
		requestTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline; expired requests get 503 + Retry-After (0 disables)")
	)
	var specs collectionSpecs
	flag.Func("collection", "serve a named collection: name=synth:scale=F,seed=N or name=path.fbmx (repeatable)", specs.add)
	var annFlags annSpecs
	flag.Func("ann", "approximate retrieval tier: [name:]nlist=N,nprobe=N[,quant=f32|i8][,seed=N]; bare applies to all collections (repeatable)", annFlags.add)
	flag.Parse()

	if *shards < 1 {
		log.Fatalf("fbserve: -shards must be >= 1, got %d", *shards)
	}
	if len(specs) == 0 {
		if err := specs.add(fmt.Sprintf("default=synth:scale=%g,seed=%d", *scale, *seed)); err != nil {
			log.Fatalf("fbserve: %v", err)
		}
	}
	reg := obsv.NewRegistry()
	registerProcessMetrics(reg)
	cfg := serveConfig{
		scale: *scale, seed: *seed, k: *k, epsilon: *epsilon,
		dir: *dir, syncWAL: *syncWAL, compactEach: *compactEach,
		maxSessions: *maxSessions, iterBudget: *iterBudget, cacheSize: *cacheSize,
		shards: *shards, maxVertices: *maxVertices, maxBytes: *maxBytes,
		ageHorizon: *ageHorizon,
		multi:      len(specs) > 1, ann: annFlags, obs: reg,
	}

	if *exportFBMX != "" {
		// Export needs only the named collection's dataset — don't pay
		// for (or open durable state of) any other configured collection.
		name, path, ok := strings.Cut(*exportFBMX, "=")
		var spec string
		for _, s := range specs {
			if s.name == name {
				spec = s.spec
			}
		}
		if !ok || path == "" || spec == "" {
			log.Fatalf("fbserve: -export-fbmx %q: want name=path with a configured collection", *exportFBMX)
		}
		ds, _, mm, err := buildDataset(spec, cfg)
		if err != nil {
			log.Fatalf("fbserve: collection %s: %v", name, err)
		}
		if err := store.WriteFBMX(path, ds.Matrix()); err != nil {
			log.Fatalf("fbserve: exporting %s: %v", name, err)
		}
		if mm != nil {
			_ = mm.Close()
		}
		log.Printf("exported collection %s (%d items, %d bins) to %s", name, ds.Len(), ds.Dim, path)
		return
	}

	if *exportFBIX != "" {
		name, path, ok := strings.Cut(*exportFBIX, "=")
		var spec string
		for _, s := range specs {
			if s.name == name {
				spec = s.spec
			}
		}
		if !ok || path == "" || spec == "" {
			log.Fatalf("fbserve: -export-fbix %q: want name=path with a configured collection", *exportFBIX)
		}
		ds, _, mm, err := buildDataset(spec, cfg)
		if err != nil {
			log.Fatalf("fbserve: collection %s: %v", name, err)
		}
		opts := ann.Options{Seed: cfg.seed}
		if as := cfg.ann.forName(name); as != nil {
			opts = ann.Options{NList: as.nlist, NProbe: as.nprobe, Quant: as.quant, Seed: as.seed}
		}
		idx, err := ann.Build(ds.Matrix(), opts)
		if err != nil {
			log.Fatalf("fbserve: building index for %s: %v", name, err)
		}
		if err := ann.WriteFBIX(path, idx); err != nil {
			log.Fatalf("fbserve: exporting index for %s: %v", name, err)
		}
		if mm != nil {
			_ = mm.Close()
		}
		log.Printf("exported %s index of collection %s (%d items) to %s", idx.Describe(), name, ds.Len(), path)
		return
	}

	colls := make(map[string]*collection, len(specs))
	order := make([]string, 0, len(specs))
	for _, s := range specs {
		c, err := buildCollection(s.name, s.spec, cfg)
		if err != nil {
			log.Fatalf("fbserve: collection %s: %v", s.name, err)
		}
		colls[s.name] = c
		order = append(order, s.name)
		log.Printf("collection %s: %d items (%d bins) from %s backend (%s)", c.name, c.ds.Len(), c.ds.Dim, c.backend, c.source)
		if c.ann != nil {
			log.Printf("collection %s: approximate tier %s (%s)", c.name, c.ann.Describe(), c.annSrc)
		}
	}

	defaultName := resolveDefault(colls)
	timeouts := serverTimeouts{
		readHeader: *readHeaderTimeout,
		read:       *readTimeout,
		write:      *writeTimeout,
		idle:       *idleTimeout,
		request:    *requestTimeout,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           hardened(newMux(colls, defaultName, reg, *pprofOn), timeouts.request, reg),
		ReadHeaderTimeout: timeouts.readHeader,
		ReadTimeout:       timeouts.read,
		WriteTimeout:      timeouts.write,
		IdleTimeout:       timeouts.idle,
	}
	go func() {
		total := 0
		for _, c := range colls {
			total += c.ds.Len()
		}
		log.Printf("serving %d collections (%d items total) on %s", len(colls), total, *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("fbserve: %v", err)
		}
	}()

	// Scheduled lifecycle compaction: every -compact-interval each
	// collection rebuilds its tree(s), dropping vertices not reinforced
	// within -age-horizon; the service layer invalidates exactly the
	// shards whose pass reclaimed something. Quota-pressure compaction
	// inside the store fires regardless — the ticker bounds memory
	// proactively instead of waiting for 507s.
	compactDone := make(chan struct{})
	if *compactInt > 0 {
		go func() {
			ticker := time.NewTicker(*compactInt)
			defer ticker.Stop()
			for {
				select {
				case <-compactDone:
					return
				case <-ticker.C:
					for _, name := range order {
						stats, err := colls[name].svc.CompactAged(context.Background())
						if err != nil && !errors.Is(err, service.ErrNotCompactable) {
							log.Printf("fbserve: %s: compaction: %v", name, err)
						}
						var before, after, reclaimed int
						for _, st := range stats {
							before += st.Before
							after += st.After
							reclaimed += st.Reclaimed
						}
						if reclaimed > 0 {
							log.Printf("%s: aging compaction reclaimed %d vertices (%d -> %d)", name, reclaimed, before, after)
						}
					}
				}
			}
		}()
	}

	// Graceful shutdown: stop accepting, drain every collection's
	// sessions (inserting their converged outcomes), then make each
	// collection's learned state durable and release its backend.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("shutting down ...")
	close(compactDone)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("fbserve: shutdown: %v", err)
	}
	for _, name := range order {
		c := colls[name]
		closed, inserted, err := c.svc.Drain(shutdownCtx)
		if err != nil {
			log.Printf("fbserve: %s: drain: %v", name, err)
		}
		log.Printf("%s: drained %d sessions (%d outcomes inserted)", name, closed, inserted)
		if c.durable != nil {
			if err := c.durable.Compact(); err != nil {
				log.Printf("fbserve: %s: compact: %v", name, err)
			}
			if err := c.durable.Close(); err != nil {
				log.Printf("fbserve: %s: close: %v", name, err)
			}
			log.Printf("%s: compacted WAL; %d points durable", name, c.durable.Stats().Points)
		}
		if c.sharded != nil && cfg.dir != "" {
			if err := c.sharded.Compact(); err != nil {
				log.Printf("fbserve: %s: compact: %v", name, err)
			}
			if err := c.sharded.Close(); err != nil {
				log.Printf("fbserve: %s: close: %v", name, err)
			}
			log.Printf("%s: compacted %d shard WALs; %d points durable", name, c.sharded.NumShards(), c.sharded.Stats().Points)
		}
		if c.ann != nil {
			if err := c.ann.Close(); err != nil {
				log.Printf("fbserve: %s: releasing index: %v", name, err)
			}
		}
		if c.mm != nil {
			if err := c.mm.Close(); err != nil {
				log.Printf("fbserve: %s: unmapping collection: %v", name, err)
			}
		}
	}
}

// moduleStateAt reports whether dir holds durable bypass state — a
// single-tree snapshot/WAL pair or a sharded module manifest — used to
// refuse layout changes that would silently shadow learned state.
func moduleStateAt(dir string) bool {
	for _, f := range []string{core.SnapshotFile, core.JournalFile, shardedbypass.ManifestFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err == nil {
			return true
		}
	}
	return false
}

// resolveDefault picks the collection the bare legacy routes serve: the
// one named "default" when present, else the only collection, else none.
func resolveDefault(colls map[string]*collection) string {
	if _, ok := colls["default"]; ok {
		return "default"
	}
	if len(colls) == 1 {
		for name := range colls {
			return name
		}
	}
	return ""
}

// buildDataset resolves a collection spec into a dataset over the
// appropriate backend.
func buildDataset(spec string, cfg serveConfig) (*dataset.Dataset, string, *store.MmapMatrix, error) {
	if params, ok := strings.CutPrefix(spec, "synth:"); ok {
		scale, seed := cfg.scale, cfg.seed
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, "", nil, fmt.Errorf("synth spec: want key=value, got %q", kv)
				}
				var err error
				switch key {
				case "scale":
					scale, err = strconv.ParseFloat(val, 64)
				case "seed":
					seed, err = strconv.ParseInt(val, 10, 64)
				default:
					err = fmt.Errorf("unknown synth parameter %q", key)
				}
				if err != nil {
					return nil, "", nil, fmt.Errorf("synth spec %q: %w", kv, err)
				}
			}
		}
		ds, err := dataset.Build(imagegen.IMSILike(seed, scale), histogram.DefaultExtractor)
		if err != nil {
			return nil, "", nil, err
		}
		return ds, "heap", nil, nil
	}
	path := strings.TrimPrefix(spec, "fbmx:")
	if !strings.HasPrefix(spec, "fbmx:") && !strings.HasSuffix(path, ".fbmx") {
		return nil, "", nil, fmt.Errorf("spec %q: want synth:..., fbmx:path, or a .fbmx file path", spec)
	}
	mm, err := store.OpenMmap(path)
	if err != nil {
		return nil, "", nil, err
	}
	// A long-lived server pays the one-time page walk to know the
	// collection it announces is intact (see DESIGN.md on FBMX checksums).
	if err := mm.Verify(); err != nil {
		_ = mm.Close()
		return nil, "", nil, err
	}
	ds, err := dataset.FromBackend(mm, nil, nil)
	if err != nil {
		_ = mm.Close()
		return nil, "", nil, err
	}
	return ds, "mmap", mm, nil
}

// attachANN resolves a collection's approximate retrieval tier. An FBMX
// collection with an FBIX sidecar next to it (<path minus .fbmx>.fbix)
// loads the sidecar — its trained structure wins over the flag, whose
// nprobe (when set) still applies as the probe-tuning override. With no
// sidecar, a -ann flag triggers an in-process build. No sidecar and no
// flag means the exact scan.
func attachANN(name string, ds *dataset.Dataset, mm *store.MmapMatrix, as *annSpec) (*ann.Index, string, error) {
	if mm != nil {
		sidecar := strings.TrimSuffix(mm.Path(), ".fbmx") + ".fbix"
		if _, err := os.Stat(sidecar); err == nil {
			idx, err := ann.OpenFBIX(sidecar)
			if err != nil {
				return nil, "", fmt.Errorf("loading index sidecar %s: %w", sidecar, err)
			}
			if err := idx.Bind(ds.Matrix()); err != nil {
				_ = idx.Close()
				return nil, "", fmt.Errorf("index sidecar %s: %w", sidecar, err)
			}
			if as != nil && as.nprobe > 0 {
				if err := idx.SetNProbe(as.nprobe); err != nil {
					_ = idx.Close()
					return nil, "", err
				}
			}
			return idx, sidecar, nil
		}
	}
	if as == nil {
		return nil, "", nil
	}
	idx, err := ann.Build(ds.Matrix(), ann.Options{
		NList: as.nlist, NProbe: as.nprobe, Quant: as.quant, Seed: as.seed,
	})
	if err != nil {
		return nil, "", fmt.Errorf("building index for %s: %w", name, err)
	}
	return idx, "built", nil
}

// buildCollection assembles one collection's serving stack.
func buildCollection(name, spec string, cfg serveConfig) (*collection, error) {
	ds, backend, mm, err := buildDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	var idx *ann.Index
	fail := func(err error) (*collection, error) {
		if idx != nil {
			_ = idx.Close()
		}
		if mm != nil {
			_ = mm.Close()
		}
		return nil, err
	}
	var annSrc string
	idx, annSrc, err = attachANN(name, ds, mm, cfg.ann.forName(name))
	if err != nil {
		return fail(err)
	}
	// Every instrument this collection registers carries its name, so a
	// multi-collection process stays separable at the scrape.
	obsLabels := []obsv.Label{obsv.L("collection", name)}
	if idx != nil && cfg.obs != nil {
		idx.Observe(cfg.obs, obsLabels...)
	}
	engOpts := engine.Options{}
	if idx != nil {
		engOpts.Searcher = idx
	}
	eng, err := engine.New(ds, engOpts)
	if err != nil {
		return fail(err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		return fail(err)
	}
	treeCfg := core.Config{
		Epsilon: cfg.epsilon, DefaultWeights: codec.DefaultWeights(),
		MaxVertices: cfg.maxVertices, MaxBytes: cfg.maxBytes,
		AgeHorizon: cfg.ageHorizon,
	}

	dir := cfg.dir
	if dir != "" && cfg.multi {
		// Nested layout. Refuse to shadow a single-collection module
		// sitting at the directory root: its learned state would be
		// silently unread under dir/<name>/.
		if moduleStateAt(cfg.dir) {
			return fail(fmt.Errorf("module state at %s uses the single-collection layout; move it to %s before serving multiple collections",
				cfg.dir, filepath.Join(cfg.dir, "<name>")))
		}
		dir = filepath.Join(cfg.dir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(err)
		}
	} else if dir != "" {
		// Flat layout. Refuse to shadow a nested module left by a
		// previous multi-collection run of this collection name.
		if nested := filepath.Join(dir, name); moduleStateAt(nested) {
			return fail(fmt.Errorf("module state at %s uses the multi-collection layout; move it to %s (or keep serving multiple collections)",
				nested, dir))
		}
	}

	c := &collection{name: name, backend: backend, source: spec, ds: ds, mm: mm, ann: idx, annSrc: annSrc}
	var byp service.Bypass
	switch {
	case cfg.shards > 1 && dir != "":
		// Durable sharded: shards recover their WALs in parallel while
		// the server comes up; requests hitting a replaying shard get 503.
		c.sharded, err = shardedbypass.OpenAsync(dir, codec.D(), codec.P(), treeCfg, shardedbypass.Options{
			Shards:    cfg.shards,
			Durable:   core.DurableOptions{CompactEvery: cfg.compactEach, Sync: cfg.syncWAL},
			Obs:       cfg.obs,
			ObsLabels: obsLabels,
		})
		if err != nil {
			return fail(fmt.Errorf("opening sharded module: %w", err))
		}
		byp, c.health = c.sharded, c.sharded
		go func(name string, sharded *shardedbypass.Sharded, dir string) {
			if err := sharded.WaitReady(); err != nil {
				// Terminal for this collection only: its healthz reports
				// "failed" (500) and shard-routed requests keep erroring,
				// while every other collection serves on. Killing the
				// process here would take healthy collections down with it.
				log.Printf("fbserve: %s: shard recovery failed (collection unavailable): %v", name, err)
				return
			}
			log.Printf("%s: sharded module at %s: %d shards live, %d points recovered, %d journaled inserts",
				name, dir, sharded.NumShards(), sharded.Stats().Points, sharded.Journaled())
		}(name, c.sharded, dir)
	case cfg.shards > 1:
		c.sharded, err = shardedbypass.New(codec.D(), codec.P(), treeCfg, shardedbypass.Options{
			Shards: cfg.shards, Obs: cfg.obs, ObsLabels: obsLabels,
		})
		if err != nil {
			return fail(err)
		}
		byp, c.health = c.sharded, c.sharded
	case dir != "":
		// The legacy single-tree path must not open (and silently shadow)
		// a sharded module directory: its state lives under shard-*/,
		// which core.OpenDurable would never read.
		if m, ok, merr := shardedbypass.ReadManifest(dir); merr != nil {
			return fail(fmt.Errorf("reading manifest at %s: %w", dir, merr))
		} else if ok {
			return fail(fmt.Errorf("module at %s is sharded (%d shards); pass -shards %d", dir, m.Shards, m.Shards))
		}
		c.durable, err = core.OpenDurable(dir, codec.D(), codec.P(), treeCfg, core.DurableOptions{
			CompactEvery: cfg.compactEach,
			Sync:         cfg.syncWAL,
			Obs:          cfg.obs,
			ObsLabels:    obsLabels,
		})
		if err != nil {
			return fail(fmt.Errorf("opening durable module: %w", err))
		}
		byp = c.durable
		log.Printf("%s: durable module at %s: %d points recovered, %d journaled inserts",
			name, dir, c.durable.Stats().Points, c.durable.Journaled())
	default:
		mem, err := core.New(codec.D(), codec.P(), treeCfg)
		if err != nil {
			return fail(err)
		}
		byp = mem
	}

	c.svc, err = service.New(eng, byp, service.Options{
		MaxSessions:     cfg.maxSessions,
		IterationBudget: cfg.iterBudget,
		CacheSize:       cfg.cacheSize,
		DefaultK:        cfg.k,
		Obs:             cfg.obs,
		ObsLabels:       obsLabels,
	})
	if err != nil {
		return fail(err)
	}
	return c, nil
}

// resultJSON is one retrieved item, annotated with the oracle's category
// and theme so clients can score relevance.
type resultJSON struct {
	Index    int     `json:"index"`
	Distance float64 `json:"distance"`
	Category string  `json:"category"`
	Theme    string  `json:"theme"`
}

// stateJSON is the wire form of a session snapshot.
type stateJSON struct {
	Collection string       `json:"collection"`
	Session    uint64       `json:"session"`
	K          int          `json:"k"`
	Results    []resultJSON `json:"results"`
	Iterations int          `json:"iterations"`
	BudgetLeft int          `json:"budget_left"`
	Converged  bool         `json:"converged"`
	CacheHit   bool         `json:"cache_hit"`
	Warm       bool         `json:"warm"`
}

type queryRequest struct {
	// Item selects a collection image as the query (the usual demo path);
	// Feature supplies a raw normalized histogram instead.
	Item    *int      `json:"item"`
	Feature []float64 `json:"feature"`
	K       int       `json:"k"`
}

type feedbackRequest struct {
	Session uint64    `json:"session"`
	Scores  []float64 `json:"scores"`
}

type closeRequest struct {
	Session uint64 `json:"session"`
}

type closeResponse struct {
	Collection string `json:"collection"`
	Session    uint64 `json:"session"`
	Iterations int    `json:"iterations"`
	Inserted   bool   `json:"inserted"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the X-Request-Id the hardened wrapper assigned;
	// empty only for handlers mounted without the wrapper (unit tests).
	RequestID string `json:"request_id,omitempty"`
}

// collectionInfo identifies a collection and its retrieval substrate in
// stats responses.
type collectionInfo struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	Items   int    `json:"items"`
	Dim     int    `json:"dim"`
	// Index describes the approximate retrieval tier when one is active
	// (e.g. "ivf(nlist=64,nprobe=8,quant=f32)"); IndexSource is "built"
	// or the FBIX sidecar path it was loaded from.
	Index       string `json:"index,omitempty"`
	IndexSource string `json:"index_source,omitempty"`
}

// collectionStats is one collection's /stats block: the serving-layer
// counters plus the collection's identity, so isolation between
// collections is observable (each has its own sessions, cache and tree).
type collectionStats struct {
	Collection collectionInfo `json:"collection"`
	service.Stats
}

// statsResponse is the global /stats shape: one block per collection
// plus the process-identity block.
type statsResponse struct {
	Server      serverInfo                 `json:"server"`
	Collections map[string]collectionStats `json:"collections"`
}

// serverInfo identifies the process behind a /stats or /healthz reply:
// operators correlate scrapes and incident timelines against the exact
// build and start time, and a changed PID or start time reveals a
// restart that load balancers would otherwise hide.
type serverInfo struct {
	StartTime     string  `json:"start_time"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	PID           int     `json:"pid"`
}

// buildRevision reads the VCS revision stamped into the binary at build
// time ("" for go test binaries and builds outside a checkout).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

var buildRev = buildRevision()

func currentServerInfo() serverInfo {
	return serverInfo{
		StartTime:     processStart.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(processStart).Seconds(),
		GoVersion:     runtime.Version(),
		Revision:      buildRev,
		PID:           os.Getpid(),
	}
}

// registerProcessMetrics exposes process-level runtime series next to
// the request-path instruments, so one scrape answers both "is it slow"
// and "is it leaking".
func registerProcessMetrics(reg *obsv.Registry) {
	reg.GaugeFunc("fb_process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
	reg.GaugeFunc("fb_process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("fb_process_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("fb_process_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}

// shardHealth is the slice of the sharded bypass the health endpoint
// needs: readiness, terminal recovery failures, and per-shard state.
type shardHealth interface {
	Ready() bool
	Err() error
	NumShards() int
	ShardInfos() []shardedbypass.ShardInfo
}

// statsFor assembles one collection's stats block.
func statsFor(c *collection) collectionStats {
	info := collectionInfo{Name: c.name, Backend: c.backend, Items: c.ds.Len(), Dim: c.ds.Dim}
	if c.ann != nil {
		info.Index = c.ann.Describe()
		info.IndexSource = c.annSrc
	}
	return collectionStats{
		Collection: info,
		Stats:      c.svc.Stats(),
	}
}

// newMux wires every collection into one http.Handler; split from main
// so the end-to-end tests drive the exact production routes via
// httptest. Per-collection routes live under /c/<name>/; the bare
// legacy routes serve defaultName (usually "default") when it is
// non-empty.
func newMux(colls map[string]*collection, defaultName string, reg *obsv.Registry, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()

	// Prometheus text exposition of the whole registry. The output is
	// staged through a buffer so a marshalling failure never yields a
	// half-written 200. Nil registry (unit tests) serves an empty page.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})

	// Profiling endpoints are opt-in (-pprof): they expose heap contents
	// and symbol names, so they stay off unless an operator asks.
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}

	// Global liveness: a failed shard recovery anywhere is terminal
	// (500); any replaying shard holds traffic (503); otherwise ok with
	// the total in-flight session count.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		sessions := 0
		replaying := map[string][]int{}
		degraded := map[string]string{}
		for name, c := range colls {
			st, code := collectionHealth(c)
			switch code {
			case http.StatusInternalServerError:
				writeJSON(w, code, map[string]any{
					"status": "failed", "collection": name, "error": st["error"],
					"server": currentServerInfo(),
				})
				return
			case http.StatusServiceUnavailable:
				replaying[name] = st["replaying"].([]int)
			default:
				if st["status"] == "degraded" {
					degraded[name] = st["error"].(string)
				}
				sessions += st["sessions"].(int)
			}
		}
		if len(replaying) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":    "replaying",
				"replaying": replaying,
				"server":    currentServerInfo(),
			})
			return
		}
		if len(degraded) > 0 {
			// Degraded collections still serve predictions, so the process
			// is alive (200) — but the status names every read-only
			// collection and why.
			writeJSON(w, http.StatusOK, map[string]any{
				"status":      "degraded",
				"degraded":    degraded,
				"collections": len(colls),
				"sessions":    sessions,
				"server":      currentServerInfo(),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ok",
			"collections": len(colls),
			"sessions":    sessions,
			"server":      currentServerInfo(),
		})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := statsResponse{
			Server:      currentServerInfo(),
			Collections: make(map[string]collectionStats, len(colls)),
		}
		for name, c := range colls {
			out.Collections[name] = statsFor(c)
		}
		writeJSON(w, http.StatusOK, out)
	})

	// Per-collection routes: /c/<name>/<op>.
	mux.HandleFunc("/c/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/c/")
		name, op, _ := strings.Cut(rest, "/")
		c := colls[name]
		if c == nil {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("%w %q", errUnknownCollection, name))
			return
		}
		serveCollection(c, op, w, r)
	})

	// Legacy routes → the default collection.
	for _, op := range []string{"query", "session", "feedback", "close"} {
		op := op
		mux.HandleFunc("/"+op, func(w http.ResponseWriter, r *http.Request) {
			c := colls[defaultName]
			if c == nil {
				writeError(w, r, http.StatusNotFound,
					fmt.Errorf("%w: no default collection; use /c/<name>/%s", errUnknownCollection, op))
				return
			}
			serveCollection(c, op, w, r)
		})
	}
	return mux
}

// hardened wraps the route mux with the serving edge's blanket
// protections: a panic recovery barrier (one handler bug must not kill
// every collection's sessions with the process) and an optional
// per-request deadline, delivered to handlers through the request
// context so the service layer can abort before its expensive stages.
// Every request gets a generated ID — set as the X-Request-Id response
// header before the handler runs and threaded through the context so
// error bodies (including the timeout and panic responses this wrapper
// itself writes) carry it. Panics and expired deadlines are counted in
// the registry; reg may be nil (counters degrade to no-ops).
func hardened(h http.Handler, requestTimeout time.Duration, reg *obsv.Registry) http.Handler {
	panics := reg.Counter("fb_http_panics_total",
		"HTTP requests that hit the panic recovery barrier.")
	timeouts := reg.Counter("fb_http_timeouts_total",
		"HTTP requests whose per-request deadline expired while being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := newRequestID()
		// Header first: it reaches the client even when the handler later
		// streams a body or panics after WriteHeader.
		w.Header().Set("X-Request-Id", rid)
		ctx := context.WithValue(r.Context(), ridKey{}, rid)
		if requestTimeout > 0 {
			tctx, cancel := context.WithTimeout(ctx, requestTimeout)
			defer cancel()
			ctx = tctx
		}
		r = r.WithContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				panics.Inc()
				log.Printf("fbserve: panic serving %s %s (request %s): %v", r.Method, r.URL.Path, rid, p)
				// Best effort: if the handler already wrote headers this is
				// a no-op on the status line, but the connection still dies
				// with the response truncated — which is the right signal.
				writeError(w, r, http.StatusInternalServerError, errors.New("internal server error"))
				return
			}
			if ctx.Err() == context.DeadlineExceeded {
				// The deadline fired while the handler ran; the handler's
				// own error path wrote the 503, this just keeps score.
				timeouts.Inc()
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// collectionHealth reports one collection's liveness as (body, status).
func collectionHealth(c *collection) (map[string]any, int) {
	if c.health != nil && !c.health.Ready() {
		// A failed shard recovery is terminal — 500, not the retryable
		// 503 of a replay in progress, so probes distinguish "warming
		// up" from "broken".
		if err := c.health.Err(); err != nil {
			return map[string]any{"status": "failed", "error": err.Error()}, http.StatusInternalServerError
		}
		replaying := []int{}
		for _, info := range c.health.ShardInfos() {
			if info.Replaying {
				replaying = append(replaying, info.Shard)
			}
		}
		return map[string]any{
			"status":    "replaying",
			"shards":    c.health.NumShards(),
			"replaying": replaying,
		}, http.StatusServiceUnavailable
	}
	if derr := c.svc.Degraded(); derr != nil {
		// Read-only serving after a persistence failure: predictions are
		// live, so the collection is up (200) — but probes and operators
		// see the degradation and its root cause.
		return map[string]any{
			"status":   "degraded",
			"error":    derr.Error(),
			"sessions": c.svc.Stats().ActiveSessions,
		}, http.StatusOK
	}
	return map[string]any{"status": "ok", "sessions": c.svc.Stats().ActiveSessions}, http.StatusOK
}

// serveCollection dispatches one collection-scoped operation.
func serveCollection(c *collection, op string, w http.ResponseWriter, r *http.Request) {
	switch op {
	case "healthz":
		body, code := collectionHealth(c)
		body["collection"] = c.name
		writeJSON(w, code, body)
	case "stats":
		writeJSON(w, http.StatusOK, statsFor(c))
	case "query":
		c.handleQuery(w, r)
	case "session":
		c.handleSession(w, r)
	case "feedback":
		c.handleFeedback(w, r)
	case "close":
		c.handleClose(w, r)
	default:
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown operation %q for collection %s", op, c.name))
	}
}

// annotate decorates raw results with the oracle's labels.
func (c *collection) annotate(results []knn.Result) []resultJSON {
	out := make([]resultJSON, len(results))
	for i, r := range results {
		item := c.ds.Items[r.Index]
		out[i] = resultJSON{Index: r.Index, Distance: r.Distance, Category: item.Category, Theme: item.Theme}
	}
	return out
}

func (c *collection) stateResponse(st service.SessionState) stateJSON {
	return stateJSON{
		Collection: c.name,
		Session:    st.ID,
		K:          st.K,
		Results:    c.annotate(st.Results),
		Iterations: st.Iterations,
		BudgetLeft: st.BudgetLeft,
		Converged:  st.Converged,
		CacheHit:   st.CacheHit,
		Warm:       st.Warm,
	}
}

func (c *collection) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	feature := req.Feature
	if req.Item != nil {
		// The checked accessor turns an out-of-range item id into an
		// errors.Is-able store.ErrOutOfRange → 400, never a panic.
		f, err := c.ds.Feature(*req.Item)
		if err != nil {
			writeError(w, r, statusFor(err), err)
			return
		}
		feature = f
	}
	if feature == nil {
		writeError(w, r, http.StatusBadRequest, errors.New("need item or feature"))
		return
	}
	st, err := c.svc.Open(r.Context(), feature, req.K)
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, c.stateResponse(st))
}

func (c *collection) handleSession(w http.ResponseWriter, r *http.Request) {
	var id uint64
	if _, err := fmt.Sscan(r.URL.Query().Get("id"), &id); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad session id: %w", err))
		return
	}
	st, err := c.svc.Query(r.Context(), id)
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, c.stateResponse(st))
}

func (c *collection) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	st, err := c.svc.Feedback(r.Context(), req.Session, req.Scores)
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, c.stateResponse(st))
}

func (c *collection) handleClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req closeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	res, err := c.svc.Close(r.Context(), req.Session)
	if err != nil {
		writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, closeResponse{
		Collection: c.name,
		Session:    res.ID,
		Iterations: res.Iterations,
		Inserted:   res.Inserted,
	})
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// whose client disconnected before the response was written; no reply
// reaches the client, but logs and metrics distinguish it from server
// faults.
const statusClientClosedRequest = 499

// statusFor maps the service's errors.Is-able sentinels onto HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errUnknownCollection):
		return http.StatusNotFound
	case errors.Is(err, service.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrOutOfDomain), errors.Is(err, service.ErrInvalidArgument):
		return http.StatusBadRequest
	case errors.Is(err, store.ErrOutOfRange):
		// A bounds failure on the serving path is a client-supplied bad
		// index, classified by the store's sentinel instead of reaching
		// the handler as a slice panic.
		return http.StatusBadRequest
	case errors.Is(err, shardedbypass.ErrReplaying):
		// Startup recovery of one shard: retryable, not a server fault.
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrQuotaExceeded):
		// The learned mapping hit its vertex/byte quota: the session's
		// outcome could not be stored. 507 tells the client the store —
		// not the request — is the limit.
		return http.StatusInsufficientStorage
	case errors.Is(err, core.ErrDegraded):
		// Persistence failed and the store flipped to read-only serving:
		// predictions still work, inserts need an operator. Retryable
		// only after intervention — but still 503, not 500: the request
		// was fine.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request deadline expired before the expensive stage.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterFor picks the Retry-After hint (in seconds) for retryable
// rejections, "" for everything else. Overload and replay clear in
// seconds; a degraded store needs an operator (30s probes); a full quota
// needs a raise or a compaction policy change (60s).
func retryAfterFor(err error) string {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return "1"
	case errors.Is(err, shardedbypass.ErrReplaying):
		return "1"
	case errors.Is(err, context.DeadlineExceeded):
		return "1"
	case errors.Is(err, core.ErrQuotaExceeded):
		return "60"
	case errors.Is(err, core.ErrDegraded):
		return "30"
	default:
		return ""
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fbserve: encoding response: %v", err)
	}
}

// writeError renders an error body carrying the request ID the hardened
// wrapper minted, so a client holding only the JSON error (not the
// X-Request-Id header) can still quote the exact request to operators.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if ra := retryAfterFor(err); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: requestIDFrom(r)})
}
