// Command fbserve is the FeedbackBypass network service: a long-lived
// HTTP/JSON server placing the learned Mopt beside an interactive
// retrieval engine (Figure 4 of the paper) and serving many concurrent
// user sessions through internal/service.
//
// Endpoints:
//
//	GET  /healthz   liveness + in-flight session count
//	GET  /stats     service counters, cache occupancy, tree shape
//	POST /query     open a session: {"item": 3, "k": 5} or
//	                {"feature": [...], "k": 5} → first results + session id
//	GET  /session   ?id=N — current session state without advancing it
//	POST /feedback  {"session": N, "scores": [1,0,...]} → refined results
//	POST /close     {"session": N} → converged OQPs inserted into the bypass
//
// Results carry each item's category and theme so a client (or a human
// with curl) can play the relevance oracle. On SIGINT/SIGTERM the server
// stops accepting connections, drains every in-flight session (inserting
// converged outcomes), and — when running durably (-dir) — compacts the
// write-ahead log before exiting.
//
// Usage:
//
//	fbserve -addr :8080 -scale 0.3 -k 10                  # in-memory
//	fbserve -addr :8080 -dir /var/lib/fbserve -sync       # durable
//	fbserve -addr :8080 -dir /var/lib/fbserve -shards 8   # sharded
//
// With -shards S > 1 the learned mapping is partitioned across S
// independent Simplex Trees (internal/shardedbypass): inserts to
// different shards no longer contend, an insert invalidates only its own
// shard's cached predictions, and in durable mode each shard recovers
// its own WAL in parallel at startup — requests touching a shard still
// replaying get 503 until it is live. The shard count is baked into the
// module directory's manifest; reopening with a different -shards is
// refused. -shards 1 (the default) is the compatibility mode and keeps
// the original single-tree directory layout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/service"
	"repro/internal/shardedbypass"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		scale       = flag.Float64("scale", 0.3, "collection scale (1 = the paper's ~10,000 images)")
		seed        = flag.Int64("seed", 1, "random seed for the synthetic collection")
		k           = flag.Int("k", 10, "default results per query")
		epsilon     = flag.Float64("epsilon", 0.05, "Simplex Tree insert threshold ε")
		dir         = flag.String("dir", "", "durable module directory (WAL + snapshots); empty = in-memory")
		syncWAL     = flag.Bool("sync", false, "fsync the WAL on every accepted insert (durable mode)")
		compactEach = flag.Int("compact-every", 512, "compact the WAL after this many journaled inserts (durable mode)")
		maxSessions = flag.Int("max-sessions", 1024, "in-flight session bound (further opens get 429)")
		iterBudget  = flag.Int("iter-budget", engine.DefaultMaxIterations, "feedback rounds allowed per session")
		cacheSize   = flag.Int("cache", 1024, "LRU prediction cache entries (negative disables)")
		shards      = flag.Int("shards", 1, "partition the bypass across this many independent Simplex Trees (1 = single-tree compatibility mode)")
	)
	flag.Parse()

	log.Printf("building collection (scale %.2f, seed %d) ...", *scale, *seed)
	ds, err := dataset.Build(imagegen.IMSILike(*seed, *scale), histogram.DefaultExtractor)
	if err != nil {
		log.Fatalf("fbserve: %v", err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		log.Fatalf("fbserve: %v", err)
	}
	codec, err := core.NewHistogramCodec(ds.Dim)
	if err != nil {
		log.Fatalf("fbserve: %v", err)
	}
	cfg := core.Config{Epsilon: *epsilon, DefaultWeights: codec.DefaultWeights()}

	if *shards < 1 {
		log.Fatalf("fbserve: -shards must be >= 1, got %d", *shards)
	}
	var (
		byp     service.Bypass
		durable *core.DurableBypass
		sharded *shardedbypass.Sharded
	)
	switch {
	case *shards > 1 && *dir != "":
		// Durable sharded: shards recover their WALs in parallel while the
		// server comes up; requests hitting a replaying shard get 503.
		sharded, err = shardedbypass.OpenAsync(*dir, codec.D(), codec.P(), cfg, shardedbypass.Options{
			Shards:  *shards,
			Durable: core.DurableOptions{CompactEvery: *compactEach, Sync: *syncWAL},
		})
		if err != nil {
			log.Fatalf("fbserve: opening sharded module: %v", err)
		}
		byp = sharded
		go func() {
			if err := sharded.WaitReady(); err != nil {
				log.Fatalf("fbserve: shard recovery: %v", err)
			}
			log.Printf("sharded module at %s: %d shards live, %d points recovered, %d journaled inserts",
				*dir, sharded.NumShards(), sharded.Stats().Points, sharded.Journaled())
		}()
	case *shards > 1:
		sharded, err = shardedbypass.New(codec.D(), codec.P(), cfg, shardedbypass.Options{Shards: *shards})
		if err != nil {
			log.Fatalf("fbserve: %v", err)
		}
		byp = sharded
	case *dir != "":
		// The legacy single-tree path must not open (and silently shadow)
		// a sharded module directory: its state lives under shard-*/, which
		// core.OpenDurable would never read.
		if m, ok, merr := shardedbypass.ReadManifest(*dir); merr != nil {
			log.Fatalf("fbserve: reading manifest at %s: %v", *dir, merr)
		} else if ok {
			log.Fatalf("fbserve: module at %s is sharded (%d shards); pass -shards %d", *dir, m.Shards, m.Shards)
		}
		durable, err = core.OpenDurable(*dir, codec.D(), codec.P(), cfg, core.DurableOptions{
			CompactEvery: *compactEach,
			Sync:         *syncWAL,
		})
		if err != nil {
			log.Fatalf("fbserve: opening durable module: %v", err)
		}
		byp = durable
		log.Printf("durable module at %s: %d points recovered, %d journaled inserts",
			*dir, durable.Stats().Points, durable.Journaled())
	default:
		mem, err := core.New(codec.D(), codec.P(), cfg)
		if err != nil {
			log.Fatalf("fbserve: %v", err)
		}
		byp = mem
	}

	svc, err := service.New(eng, byp, service.Options{
		MaxSessions:     *maxSessions,
		IterationBudget: *iterBudget,
		CacheSize:       *cacheSize,
		DefaultK:        *k,
	})
	if err != nil {
		log.Fatalf("fbserve: %v", err)
	}

	// A typed-nil *Sharded must become an untyped-nil interface, or the
	// handler would call methods on a nil pointer.
	var health shardHealth
	if sharded != nil {
		health = sharded
	}
	srv := &http.Server{Addr: *addr, Handler: newMux(svc, health)}
	go func() {
		log.Printf("serving %d images on %s (feedback %s)", ds.Len(), *addr, eng.FeedbackName())
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("fbserve: %v", err)
		}
	}()

	// Graceful shutdown: stop accepting, drain sessions (inserting their
	// converged outcomes), then make the learned state durable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("shutting down ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("fbserve: shutdown: %v", err)
	}
	closed, inserted, err := svc.Drain()
	if err != nil {
		log.Printf("fbserve: drain: %v", err)
	}
	log.Printf("drained %d sessions (%d outcomes inserted)", closed, inserted)
	if durable != nil {
		if err := durable.Compact(); err != nil {
			log.Printf("fbserve: compact: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Printf("fbserve: close: %v", err)
		}
		log.Printf("compacted WAL; %d points durable", durable.Stats().Points)
	}
	if sharded != nil && *dir != "" {
		if err := sharded.Compact(); err != nil {
			log.Printf("fbserve: compact: %v", err)
		}
		if err := sharded.Close(); err != nil {
			log.Printf("fbserve: close: %v", err)
		}
		log.Printf("compacted %d shard WALs; %d points durable", sharded.NumShards(), sharded.Stats().Points)
	}
}

// resultJSON is one retrieved item, annotated with the oracle's category
// and theme so clients can score relevance.
type resultJSON struct {
	Index    int     `json:"index"`
	Distance float64 `json:"distance"`
	Category string  `json:"category"`
	Theme    string  `json:"theme"`
}

// stateJSON is the wire form of a session snapshot.
type stateJSON struct {
	Session    uint64       `json:"session"`
	K          int          `json:"k"`
	Results    []resultJSON `json:"results"`
	Iterations int          `json:"iterations"`
	BudgetLeft int          `json:"budget_left"`
	Converged  bool         `json:"converged"`
	CacheHit   bool         `json:"cache_hit"`
	Warm       bool         `json:"warm"`
}

type queryRequest struct {
	// Item selects a collection image as the query (the usual demo path);
	// Feature supplies a raw normalized histogram instead.
	Item    *int      `json:"item"`
	Feature []float64 `json:"feature"`
	K       int       `json:"k"`
}

type feedbackRequest struct {
	Session uint64    `json:"session"`
	Scores  []float64 `json:"scores"`
}

type closeRequest struct {
	Session uint64 `json:"session"`
}

type closeResponse struct {
	Session    uint64 `json:"session"`
	Iterations int    `json:"iterations"`
	Inserted   bool   `json:"inserted"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// shardHealth is the slice of the sharded bypass the health endpoint
// needs: readiness, terminal recovery failures, and per-shard state.
type shardHealth interface {
	Ready() bool
	Err() error
	NumShards() int
	ShardInfos() []shardedbypass.ShardInfo
}

// newMux wires the service into an http.Handler; split from main so the
// end-to-end tests drive the exact production routes via httptest.
// sharded is the partitioned bypass handle when serving one (nil
// otherwise); it drives the replaying-aware health report.
func newMux(svc *service.Service, sharded shardHealth) *http.ServeMux {
	mux := http.NewServeMux()
	ds := svc.Engine().Dataset()

	annotate := func(results []knn.Result) []resultJSON {
		out := make([]resultJSON, len(results))
		for i, r := range results {
			item := ds.Items[r.Index]
			out[i] = resultJSON{Index: r.Index, Distance: r.Distance, Category: item.Category, Theme: item.Theme}
		}
		return out
	}
	stateResponse := func(st service.SessionState) stateJSON {
		return stateJSON{
			Session:    st.ID,
			K:          st.K,
			Results:    annotate(st.Results),
			Iterations: st.Iterations,
			BudgetLeft: st.BudgetLeft,
			Converged:  st.Converged,
			CacheHit:   st.CacheHit,
			Warm:       st.Warm,
		}
	}

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if sharded != nil && !sharded.Ready() {
			// A failed shard recovery is terminal — 500, not the retryable
			// 503 of a replay in progress, so probes distinguish "warming
			// up" from "broken".
			if err := sharded.Err(); err != nil {
				writeJSON(w, http.StatusInternalServerError, map[string]any{
					"status": "failed",
					"error":  err.Error(),
				})
				return
			}
			// Startup recovery in progress: report which shards are still
			// replaying, with 503 so load balancers hold traffic.
			replaying := []int{}
			for _, info := range sharded.ShardInfos() {
				if info.Replaying {
					replaying = append(replaying, info.Shard)
				}
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":    "replaying",
				"shards":    sharded.NumShards(),
				"replaying": replaying,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"sessions": svc.Stats().ActiveSessions,
		})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		feature := req.Feature
		if req.Item != nil {
			if *req.Item < 0 || *req.Item >= ds.Len() {
				writeError(w, http.StatusBadRequest, fmt.Errorf("item %d out of range [0, %d)", *req.Item, ds.Len()))
				return
			}
			feature = ds.Items[*req.Item].Feature
		}
		if feature == nil {
			writeError(w, http.StatusBadRequest, errors.New("need item or feature"))
			return
		}
		st, err := svc.Open(feature, req.K)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, stateResponse(st))
	})

	mux.HandleFunc("/session", func(w http.ResponseWriter, r *http.Request) {
		var id uint64
		if _, err := fmt.Sscan(r.URL.Query().Get("id"), &id); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad session id: %w", err))
			return
		}
		st, err := svc.Query(id)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, stateResponse(st))
	})

	mux.HandleFunc("/feedback", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req feedbackRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		st, err := svc.Feedback(req.Session, req.Scores)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, stateResponse(st))
	})

	mux.HandleFunc("/close", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req closeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		res, err := svc.Close(req.Session)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, closeResponse{
			Session:    res.ID,
			Iterations: res.Iterations,
			Inserted:   res.Inserted,
		})
	})

	return mux
}

// statusFor maps the service's errors.Is-able sentinels onto HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrOutOfDomain), errors.Is(err, service.ErrInvalidArgument):
		return http.StatusBadRequest
	case errors.Is(err, shardedbypass.ErrReplaying):
		// Startup recovery of one shard: retryable, not a server fault.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fbserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
