// Command fbtree inspects a persisted Simplex Tree: header, shape
// statistics, and optionally a prediction at a query point.
//
// Usage:
//
//	fbtree -file tree.fbsx
//	fbtree -file tree.fbsx -predict 0.1,0.2,0.05,...
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/persist"
)

func main() {
	var (
		file    = flag.String("file", "", "persisted Simplex Tree file (required)")
		predict = flag.String("predict", "", "comma-separated query point to predict at (optional)")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "fbtree: -file is required")
		flag.Usage()
		os.Exit(2)
	}
	tree, err := persist.LoadFile(*file)
	if err != nil {
		fail(err)
	}
	st := tree.Stats()
	fmt.Printf("file:               %s\n", *file)
	fmt.Printf("query dimension D:  %d\n", st.Dim)
	fmt.Printf("OQP dimension N:    %d\n", st.OQPDim)
	fmt.Printf("insert threshold ε: %g\n", tree.Epsilon())
	fmt.Printf("stored points:      %d\n", st.Points)
	fmt.Printf("distinct vertices:  %d\n", st.DistinctVertices)
	fmt.Printf("nodes / leaves:     %d / %d\n", st.Nodes, st.Leaves)
	fmt.Printf("depth (max/avg):    %d / %.2f\n", st.Depth, st.AvgLeafDepth)

	if *predict == "" {
		return
	}
	parts := strings.Split(*predict, ",")
	q := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fail(fmt.Errorf("parsing query component %d: %w", i, err))
		}
		q[i] = v
	}
	oqp := make([]float64, tree.OQPDim())
	pst, err := tree.PredictInto(oqp, q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nprediction at %v:\n", q)
	fmt.Printf("  simplices traversed: %d\n", pst.Traversed)
	fmt.Printf("  OQP vector: %v\n", oqp)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fbtree:", err)
	os.Exit(1)
}
