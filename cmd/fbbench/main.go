// Command fbbench regenerates every figure of the paper's evaluation
// (Figures 1 and 9–16) on the synthetic IMSI-like collection and prints
// the same series the paper plots.
//
// Usage:
//
//	fbbench -figure all -scale 1 -queries 1000 -k 50            # paper scale
//	fbbench -figure 10 -scale 0.3 -queries 700 -k 15            # quick look
//	fbbench -figure 15 -scale 0.3 -queries 700                  # savings
//
// Absolute values depend on the synthetic collection; the shapes — who
// wins, by roughly what factor, where curves cross — are the reproduction
// target (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/obsv"
	"repro/internal/persist"
	"repro/internal/simplextree"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: all, 1, 9, 10, 11, 12, 13, 14, 15, 16, knn (retrieval-core micro-benchmark), tree (Simplex Tree concurrency/throughput series), serve (closed-loop multi-session serving benchmark), shard (sharded bypass plane sweep over S=1/2/4/8), store (heap vs mmap feature-store backends), chaos (fault-injection: crash-schedule sweep, degraded-mode and quota governance), ann (IVF approximate tier: recall/latency/bandwidth sweep over nlist, nprobe and quantization), soak (duration-bounded load with registry/runtime sampling and interactivity-budget report), or lifecycle (bypass aging: drifting soak with aging on vs off, plus a compaction crash-schedule sweep on both durable layouts)")
		scale    = flag.Float64("scale", 0.3, "collection scale (1 = the paper's ~10,000 images)")
		queries  = flag.Int("queries", 700, "training queries to process")
		k        = flag.Int("k", 15, "results per query (paper: 50)")
		seed     = flag.Int64("seed", 1, "random seed")
		epsilon  = flag.Float64("epsilon", 0.05, "Simplex Tree insert threshold ε")
		numEval  = flag.Int("eval", 80, "evaluation queries for the k-sweep figures")
		save     = flag.String("save", "", "persist the trained Simplex Tree to this file (inspect with fbtree)")
		jsonPath = flag.String("json", "", "additionally write every printed series as machine-readable JSON to this file")

		soakDur     = flag.Duration("soak-duration", 10*time.Second, "soak figure: run length")
		soakClients = flag.Int("soak-clients", 8, "soak figure: closed-loop client count")
		soakSample  = flag.Duration("soak-sample", time.Second, "soak figure: registry/runtime sampling interval")

		lcInserts = flag.Int("lifecycle-inserts", 0, "lifecycle figure: drifting inserts per soak mode (0 = default)")
		lcHorizon = flag.Int("lifecycle-horizon", 0, "lifecycle figure: aging horizon in logical inserts (0 = default)")
		lcCompact = flag.Int("lifecycle-compact-every", 0, "lifecycle figure: inserts between aging compactions (0 = default)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:       *seed,
		Scale:      *scale,
		NumQueries: *queries,
		K:          *k,
		Epsilon:    *epsilon,
	}

	if *jsonPath != "" {
		report = &jsonReport{
			Meta: reportMeta{
				Scale: *scale, Queries: *queries, K: *k, Seed: *seed,
				Epsilon: *epsilon, Figure: *figure, Timestamp: time.Now().UTC().Format(time.RFC3339),
				Env: experiments.CollectEnvelope(),
			},
			Series: map[string][]jsonSeries{},
			KNN:    map[string]knnBenchResult{},
		}
	}
	want := func(f string) bool { return *figure == "all" || *figure == f }
	start := time.Now()

	if *figure == "knn" {
		runKNNBench(*scale, *k, *numEval, *seed)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "tree" {
		runTreeBench(*queries, *epsilon, *seed)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "serve" {
		runServeBench(*scale, *k, *numEval, *seed, *epsilon)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "shard" {
		runShardBench(*scale, *k, *numEval, *seed, *epsilon)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "store" {
		runStoreBench(*scale, *k, *numEval, *seed, *epsilon)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "chaos" {
		runChaosBench(*seed)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "ann" {
		runANNBench(*k, *seed)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "soak" {
		runSoakBench(*scale, *k, *seed, *epsilon, *soakClients, *soakDur, *soakSample)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *figure == "lifecycle" {
		runLifecycleBench(*seed, *lcInserts, uint64(*lcHorizon), *lcCompact)
		writeReport(*jsonPath)
		fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
		return
	}

	// Figures 10, 14 and 16 share one savings-enabled session; Figure 1
	// and 9 reuse it too.
	var shared *experiments.Session
	needShared := want("1") || want("9") || want("10") || want("11") || want("14") || want("16")
	if needShared {
		scfg := cfg
		scfg.MeasureSavings = want("10") // only Figure 15 needs it elsewhere
		fmt.Printf("# building collection (scale %.2f) and processing %d queries at k=%d ...\n", *scale, *queries, *k)
		var err error
		shared, err = experiments.NewSession(scfg)
		if err != nil {
			fail(err)
		}
		if err := shared.Run(); err != nil {
			fail(err)
		}
		fmt.Printf("# collection: %d images, tree: %d points, depth %d (%.1fs)\n\n",
			shared.DS.Len(), shared.Bypass.Stats().Points, shared.Bypass.Stats().Depth, time.Since(start).Seconds())
	}

	if want("1") {
		section = "figure1"
		printFigure1(shared)
	}
	if want("9") {
		section = "figure9"
		printFigure9(shared)
	}
	if want("10") {
		section = "figure10"
		printFigure10(shared)
	}
	if want("11") {
		section = "figure11"
		printFigure11(shared, *numEval)
	}
	if want("12") {
		section = "figure12"
		printFigure12(cfg)
	}
	if want("13") {
		section = "figure13"
		printFigure13(cfg, *numEval)
	}
	if want("14") {
		section = "figure14"
		printFigure14(shared)
	}
	if want("15") {
		section = "figure15"
		printFigure15(cfg)
	}
	if want("16") {
		section = "figure16"
		printFigure16(shared)
	}
	if *save != "" {
		if shared == nil {
			fail(fmt.Errorf("-save requires a figure that trains the shared session"))
		}
		if err := persist.SaveFile(*save, shared.Bypass.Tree()); err != nil {
			fail(err)
		}
		fmt.Printf("# saved trained Simplex Tree to %s\n", *save)
	}
	writeReport(*jsonPath)
	fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
}

// jsonReport accumulates everything printed for the -json flag.
type jsonReport struct {
	Meta      reportMeta                   `json:"meta"`
	Series    map[string][]jsonSeries      `json:"series,omitempty"`
	KNN       map[string]knnBenchResult    `json:"knn,omitempty"`
	Tree      map[string]treeBenchResult   `json:"tree,omitempty"`
	Serve     *experiments.ServeResult     `json:"serve,omitempty"`
	Shard     *experiments.ShardResult     `json:"shard,omitempty"`
	Store     *experiments.StoreResult     `json:"store,omitempty"`
	Chaos     *experiments.ChaosResult     `json:"chaos,omitempty"`
	ANN       *experiments.ANNResult       `json:"ann,omitempty"`
	Soak      *experiments.SoakResult      `json:"soak,omitempty"`
	Lifecycle *experiments.LifecycleResult `json:"lifecycle,omitempty"`
}

type reportMeta struct {
	Scale     float64              `json:"scale"`
	Queries   int                  `json:"queries"`
	K         int                  `json:"k"`
	Seed      int64                `json:"seed"`
	Epsilon   float64              `json:"epsilon"`
	Figure    string               `json:"figure"`
	Timestamp string               `json:"timestamp"`
	Env       experiments.Envelope `json:"env"`
	// Metrics snapshots the benchmark process's observability registry at
	// report-write time: for instrumented figures (soak) it carries every
	// series /metrics would have served; for the rest it records that no
	// instruments fired — either way the artifact is self-describing.
	Metrics *obsv.Snapshot `json:"metrics,omitempty"`
}

type jsonSeries struct {
	Label  string    `json:"label"`
	XLabel string    `json:"x_label"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
}

type knnBenchResult struct {
	Collection int     `json:"collection"`
	Dim        int     `json:"dim"`
	K          int     `json:"k"`
	Queries    int     `json:"queries"`
	NsPerQuery float64 `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
}

type treeBenchResult struct {
	Dim        int     `json:"dim"`
	OQPDim     int     `json:"oqp_dim"`
	Points     int     `json:"points"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// report is nil unless -json was given; section names the figure being
// printed so recorded series land under it. benchReg is the process's
// observability registry: instrumented figures register into it, and
// its snapshot lands in every JSON artifact's provenance envelope.
var (
	report   *jsonReport
	section  string
	benchReg = obsv.NewRegistry()
)

func record(xLabel string, series ...*eval.Series) {
	if report == nil {
		return
	}
	for _, s := range series {
		report.Series[section] = append(report.Series[section], jsonSeries{
			Label: s.Label, XLabel: xLabel, X: s.X, Y: s.Y,
		})
	}
}

func writeReport(path string) {
	if report == nil || path == "" {
		return
	}
	report.Meta.Metrics = benchReg.Snapshot()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("# wrote JSON report to %s\n", path)
}

// runKNNBench measures the retrieval core in isolation: per-query latency
// of the cache-tiled SearchBatch versus the naive per-row Metric path,
// under both the default Euclidean metric and a re-weighted metric — the
// two retrieval shapes of the feedback loop.
func runKNNBench(scale float64, k, numQueries int, seed int64) {
	header(fmt.Sprintf("KNN retrieval core (scale %.2f, k = %d, %d queries)", scale, k, numQueries))
	ds, err := dataset.Build(imagegen.IMSILike(seed, scale), histogram.DefaultExtractor)
	if err != nil {
		fail(err)
	}
	scan, err := knn.NewScanBackend(ds.Matrix())
	if err != nil {
		fail(err)
	}
	qs := make([][]float64, numQueries)
	for i := range qs {
		qs[i] = ds.Items[(i*131)%ds.Len()].Feature
	}
	weights := make([]float64, ds.Dim)
	for i := range weights {
		weights[i] = 0.5 + float64(i%4)
	}
	wm, err := distance.NewWeightedEuclidean(weights)
	if err != nil {
		fail(err)
	}
	runs := []struct {
		name   string
		search func() error
	}{
		{"batch-euclidean", func() error { _, err := scan.SearchBatch(qs, k, distance.Euclidean{}); return err }},
		{"batch-weighted", func() error { _, err := scan.SearchBatch(qs, k, wm); return err }},
		{"naive-euclidean", func() error {
			for _, q := range qs {
				if _, err := scan.SearchNaive(q, k, distance.Euclidean{}); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	fmt.Printf("%-18s %14s %12s\n", "mode", "ns/query", "queries/s")
	for _, r := range runs {
		t0 := time.Now()
		if err := r.search(); err != nil {
			fail(err)
		}
		elapsed := time.Since(t0)
		nsq := float64(elapsed.Nanoseconds()) / float64(len(qs))
		qps := 1e9 / nsq
		fmt.Printf("%-18s %14.0f %12.0f\n", r.name, nsq, qps)
		if report != nil {
			report.KNN[r.name] = knnBenchResult{
				Collection: ds.Len(), Dim: ds.Dim, K: k, Queries: len(qs),
				NsPerQuery: nsq, QPS: qps,
			}
		}
	}
	fmt.Println()
}

// runTreeBench measures the Simplex Tree prediction plane at the paper's
// operating point (D = 31, N = 62): serial vs. parallel Predict
// throughput under concurrent sessions, the batch API, the insert path,
// and WAL append cost. The read path is lock-shared and allocation-free,
// so parallel throughput should scale with cores (on a single-core host
// the series documents the absence of contention instead).
func runTreeBench(queries int, epsilon float64, seed int64) {
	const (
		d      = 31
		oqpDim = 62
		points = 1000
	)
	if queries < 1024 {
		queries = 1024
	}
	header(fmt.Sprintf("Simplex Tree prediction plane (D = %d, N = %d, %d stored points, %d queries)", d, oqpDim, points, queries))
	rng := rand.New(rand.NewSource(seed))
	interior := func() []float64 {
		w := make([]float64, d+1)
		var sum float64
		for i := range w {
			w[i] = 0.05 + rng.Float64()
			sum += w[i]
		}
		q := make([]float64, d)
		for i := 0; i < d; i++ {
			q[i] = w[i+1] / sum
		}
		return q
	}
	newTree := func() *simplextree.Tree {
		tree, err := simplextree.New(geom.StandardSimplex(d), make([]float64, oqpDim), simplextree.Options{Epsilon: epsilon})
		if err != nil {
			fail(err)
		}
		return tree
	}
	randomValue := func() []float64 {
		v := make([]float64, oqpDim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}

	// Build the shared read-mostly tree and the query/insert workloads.
	tree := newTree()
	insertQs := make([][]float64, points)
	insertVs := make([][]float64, points)
	for i := 0; i < points; i++ {
		insertQs[i] = interior()
		insertVs[i] = randomValue()
		if _, err := tree.Insert(insertQs[i], insertVs[i]); err != nil {
			fail(err)
		}
	}
	qs := make([][]float64, queries)
	for i := range qs {
		qs[i] = interior()
	}

	reportRow := func(name string, ops, goroutines int, elapsed time.Duration) {
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
		fmt.Printf("%-22s %4d goroutine(s) %14.0f ns/op %12.0f ops/s\n",
			name, goroutines, nsPerOp, 1e9/nsPerOp)
		if report != nil {
			if report.Tree == nil {
				report.Tree = map[string]treeBenchResult{}
			}
			report.Tree[name] = treeBenchResult{
				Dim: d, OQPDim: oqpDim, Points: points, Goroutines: goroutines,
				Ops: ops, NsPerOp: nsPerOp, OpsPerSec: 1e9 / nsPerOp,
			}
		}
	}

	// Serial predictions through the allocation-free read path.
	dst := make([]float64, oqpDim)
	t0 := time.Now()
	for _, q := range qs {
		if _, err := tree.PredictInto(dst, q); err != nil {
			fail(err)
		}
	}
	reportRow("predict-serial", len(qs), 1, time.Since(t0))

	// Concurrent sessions: G goroutines share the read lock.
	for _, g := range []int{2, 4, 8} {
		var wg sync.WaitGroup
		t0 = time.Now()
		chunk := (len(qs) + g - 1) / g
		errs := make([]error, g)
		for w := 0; w < g; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(qs) {
				hi = len(qs)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				out := make([]float64, oqpDim)
				for _, q := range qs[lo:hi] {
					if _, err := tree.PredictInto(out, q); err != nil {
						errs[w] = err
						return
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				fail(err)
			}
		}
		reportRow(fmt.Sprintf("predict-parallel-%d", g), len(qs), g, elapsed)
	}

	// The batch API: one lock acquisition for the whole stream.
	t0 = time.Now()
	if _, _, err := tree.PredictBatch(qs); err != nil {
		fail(err)
	}
	reportRow("predict-batch", len(qs), runtime.GOMAXPROCS(0), time.Since(t0))

	// Insert throughput (exclusive lock) into a fresh tree.
	fresh := newTree()
	t0 = time.Now()
	if _, err := fresh.InsertBatch(insertQs, insertVs); err != nil {
		fail(err)
	}
	reportRow("insert-batch", points, 1, time.Since(t0))

	// WAL append cost: one record per accepted insert.
	walDir, err := os.MkdirTemp("", "fbbench-wal")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(walDir)
	wal, err := persist.OpenWAL(filepath.Join(walDir, "bench.fbwl"), d, oqpDim)
	if err != nil {
		fail(err)
	}
	defer wal.Close()
	t0 = time.Now()
	for i := 0; i < points; i++ {
		if err := wal.Append(insertQs[i], insertVs[i], uint64(i+1)); err != nil {
			fail(err)
		}
	}
	reportRow("wal-append", points, 1, time.Since(t0))
	fmt.Println()
}

// runServeBench measures the serving layer end to end: closed-loop
// oracle-driven sessions (Open → Feedback* → Close) against one shared
// service at increasing client counts. The service — and its Simplex
// Tree — is shared across levels, so the series doubles as a warm-up
// trajectory: later levels see higher warm-start and cache-hit rates.
// `sessions` rides the -eval flag (sessions per level).
func runServeBench(scale float64, k, sessions int, seed int64, epsilon float64) {
	cfg := experiments.DefaultServeConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.K = k
	cfg.Epsilon = epsilon
	if sessions > 0 {
		cfg.SessionsPerLevel = sessions
	}
	header(fmt.Sprintf("Serving layer: closed-loop sessions (scale %.2f, k = %d, %d sessions/level)",
		scale, k, cfg.SessionsPerLevel))
	res, err := experiments.RunServe(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# collection: %d images (%d bins)\n", res.Collection, res.Dim)
	fmt.Printf("# each level: train phase (oracle feedback loops, inserts) then bypass phase (same stream, no feedback)\n")
	fmt.Printf("%-8s %-8s %10s %12s %12s %12s %10s %10s %9s\n",
		"clients", "phase", "sessions", "sess/s", "p50(us)", "p99(us)", "cache-hit", "warm", "inserted")
	for _, lvl := range res.Levels {
		for _, row := range []struct {
			name string
			ph   experiments.ServePhaseResult
		}{{"train", lvl.Train}, {"bypass", lvl.Bypass}} {
			fmt.Printf("%-8d %-8s %10d %12.1f %12.0f %12.0f %9.1f%% %9.1f%% %9d\n",
				lvl.Clients, row.name, row.ph.Sessions, row.ph.SessionsPerSec, row.ph.P50Micros,
				row.ph.P99Micros, 100*row.ph.CacheHitRate, 100*row.ph.WarmRate, row.ph.Inserted)
		}
	}
	st := res.FinalStats
	fmt.Printf("# final: %d sessions, %d feedback rounds, %d/%d cache hits, %d inserts, tree %d points depth %d\n\n",
		st.Opened, st.Feedbacks, st.CacheHits, st.Predictions, st.Inserts, st.Tree.Points, st.Tree.Depth)
	if report != nil {
		report.Serve = &res
	}
}

// runSoakBench runs the soak instrument: duration-bounded closed-loop
// load over an instrumented service, with the interactivity-budget
// report and the sampled registry/runtime time series.
func runSoakBench(scale float64, k int, seed int64, epsilon float64, clients int, dur, sample time.Duration) {
	cfg := experiments.DefaultSoakConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.K = k
	cfg.Epsilon = epsilon
	if clients > 0 {
		cfg.Clients = clients
	}
	if dur > 0 {
		cfg.Duration = dur
	}
	if sample > 0 {
		cfg.SampleEvery = sample
	}
	cfg.Obs = benchReg
	header(fmt.Sprintf("Soak: %d closed-loop clients for %s (scale %.2f, k = %d, sample %s)",
		cfg.Clients, cfg.Duration, scale, k, cfg.SampleEvery))
	res, err := experiments.RunSoak(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# collection: %d images (%d bins)\n", res.Collection, res.Dim)
	fmt.Printf("# %d sessions (%d service calls) in %.1fs — %.1f sessions/s\n",
		res.Sessions, res.Ops, res.DurationSecs, res.SessionsPerSec)

	fmt.Printf("\n# interactivity budgets (complete sessions within wall-clock budget)\n")
	fmt.Printf("%-12s %10s %10s\n", "budget", "sessions", "fraction")
	for _, b := range res.Budgets {
		fmt.Printf("%-12s %10d %9.1f%%\n",
			fmt.Sprintf("%.0fms", 1000*b.BudgetSecs), b.Sessions, 100*b.Fraction)
	}

	fmt.Printf("\n# per-operation latency (from the observability registry)\n")
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "op", "count", "p50(us)", "p95(us)", "p99(us)")
	for _, ol := range res.OpLatencies {
		fmt.Printf("%-10s %10d %12.0f %12.0f %12.0f\n",
			ol.Op, ol.Count, 1e6*ol.P50Secs, 1e6*ol.P95Secs, 1e6*ol.P99Secs)
	}

	fmt.Printf("\n# samples (cumulative counters + process state)\n")
	fmt.Printf("%-10s %10s %10s %12s %12s %11s %6s\n",
		"elapsed", "sessions", "ops", "heap(MB)", "rss(MB)", "goroutines", "gc")
	for _, s := range res.Samples {
		fmt.Printf("%-10s %10d %10d %12.1f %12.1f %11d %6d\n",
			fmt.Sprintf("%.1fs", s.ElapsedSecs), s.Sessions, s.Ops,
			float64(s.HeapAllocBytes)/(1<<20), float64(s.RSSBytes)/(1<<20), s.Goroutines, s.GCCycles)
	}
	st := res.FinalStats
	fmt.Printf("# final: %d sessions opened, %d feedback rounds, %d inserts, tree %d points depth %d\n\n",
		st.Opened, st.Feedbacks, st.Inserts, st.Tree.Points, st.Tree.Depth)
	if report != nil {
		report.Soak = &res
	}
}

// runShardBench measures the sharded bypass plane: for S = 1/2/4/8 (each
// a fresh module), durable insert throughput under concurrent writers,
// the serve benchmark's train/bypass phases through the serving layer,
// and the fraction of the prediction cache surviving a single-shard
// insert. S = 1 is the unsharded baseline (comparable to -figure serve);
// `sessions` rides the -eval flag.
func runShardBench(scale float64, k, sessions int, seed int64, epsilon float64) {
	cfg := experiments.DefaultShardConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.K = k
	cfg.Epsilon = epsilon
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	header(fmt.Sprintf("Sharded bypass plane (scale %.2f, k = %d, %d sessions/phase, %d writers, %d clients)",
		scale, k, cfg.Sessions, cfg.Writers, cfg.Clients))
	res, err := experiments.RunShard(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# collection: %d images (%d bins); insert bench: %d durable ε=0 inserts (WAL+tree) from %d goroutines\n",
		res.Collection, res.Dim, cfg.InsertOps, cfg.Writers)
	fmt.Printf("%-7s %12s %8s %12s %12s %12s %12s %10s %10s\n",
		"shards", "inserts/s", "touched", "train s/s", "bypass s/s", "byp p50(us)", "byp p99(us)", "cache-hit", "retention")
	for _, lvl := range res.Levels {
		fmt.Printf("%-7d %12.0f %8d %12.1f %12.1f %12.0f %12.0f %9.1f%% %9.1f%%\n",
			lvl.Shards, lvl.InsertsPerSec, lvl.ShardsTouched,
			lvl.Train.SessionsPerSec, lvl.Bypass.SessionsPerSec,
			lvl.Bypass.P50Micros, lvl.Bypass.P99Micros,
			100*lvl.Bypass.CacheHitRate, 100*lvl.CacheRetention)
	}
	fmt.Println()
	if report != nil {
		report.Shard = &res
	}
}

// runStoreBench measures the multi-backend feature store: the same
// collection served heap-resident and mmap-resident (FBMX file) through
// the scan kernels, the tiled batch path, and the serve protocol.
// `sessions` rides the -eval flag.
func runStoreBench(scale float64, k, sessions int, seed int64, epsilon float64) {
	cfg := experiments.DefaultStoreConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.K = k
	cfg.Epsilon = epsilon
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	header(fmt.Sprintf("Multi-backend store: heap vs mmap (scale %.2f, k = %d, %d sessions/phase, %d clients)",
		scale, k, cfg.Sessions, cfg.Clients))
	res, err := experiments.RunStore(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# collection: %d images (%d bins), FBMX file %d KiB\n", res.Collection, res.Dim, res.FileBytes/1024)
	fmt.Printf("%-8s %12s %12s %12s %12s %12s %12s %12s\n",
		"backend", "cold(us)", "warm(us)", "batch(us/q)", "train s/s", "bypass s/s", "byp p50(us)", "byp p99(us)")
	for _, b := range res.Backends {
		fmt.Printf("%-8s %12.0f %12.1f %12.1f %12.1f %12.1f %12.0f %12.0f\n",
			b.Backend, b.ColdScanMicros, b.WarmScanMicros, b.BatchMicrosPerQuery,
			b.Train.SessionsPerSec, b.Bypass.SessionsPerSec, b.Bypass.P50Micros, b.Bypass.P99Micros)
	}
	fmt.Printf("# mmap/heap warm tiled-batch ratio: %.3fx (acceptance bound 1.15x)\n\n", res.WarmRatio)
	if report != nil {
		report.Store = &res
	}
}

// runANNBench sweeps the IVF approximate retrieval tier: per corpus
// scale, an exact-scan baseline plus every (nlist, quant) index probed
// across the nprobe grid — recall@k against the exact top-k, batched
// and single-query latency, and the probe-stage bandwidth ratio.
// `-scale`/`-queries` do not apply: the sweep has its own 1x/10x corpus
// grid (see experiments.DefaultANNConfig).
func runANNBench(k int, seed int64) {
	cfg := experiments.DefaultANNConfig()
	cfg.Seed = seed
	cfg.K = k
	header(fmt.Sprintf("IVF approximate tier: recall/latency/bandwidth sweep (k = %d, %d queries/scale)", cfg.K, cfg.Queries))
	res, err := experiments.RunANN(cfg)
	if err != nil {
		fail(err)
	}
	for _, sc := range res.Scales {
		fmt.Printf("# scale %s: %d rows x %d dims; exact batch %.1f us/q, p50 %.0f us, p99 %.0f us\n",
			sc.Scale, sc.Rows, sc.Dim, sc.ExactBatchMicros, sc.ExactP50Micros, sc.ExactP99Micros)
		fmt.Printf("%-7s %-5s %7s %9s %9s %9s %12s %9s %7s\n",
			"nlist", "quant", "nprobe", "recall@k", "p50(us)", "p99(us)", "batch(us/q)", "speedup", "bw")
		for _, ix := range sc.Indexes {
			for _, pt := range ix.Points {
				fmt.Printf("%-7d %-5s %7d %9.4f %9.1f %9.1f %12.2f %8.1fx %6.0f%%\n",
					pt.NList, pt.Quant, pt.NProbe, pt.RecallAtK, pt.P50Micros, pt.P99Micros,
					pt.BatchMicrosPerQuery, pt.Speedup, 100*ix.BandwidthRatio)
			}
		}
		fmt.Printf("# best speedup at recall@k >= 0.95: %.1fx\n\n", sc.BestSpeedupAtRecall)
	}
	if report != nil {
		report.ANN = &res
	}
}

// runChaosBench runs the fault-injection figure: a crash-schedule sweep
// over every mutating filesystem operation of a durable insert workload
// (single-tree and sharded layouts, asserting zero acknowledged loss),
// degraded-mode serving with the journal disk gone bad, and quota
// governance — availability, error taxonomy and recovery times.
func runChaosBench(seed int64) {
	cfg := experiments.DefaultChaosConfig()
	cfg.Seed = seed
	header(fmt.Sprintf("Fault injection: crash schedules, degraded mode, quotas (D=%d P=%d, %d inserts/schedule, %d shards)",
		cfg.D, cfg.P, cfg.Inserts, cfg.Shards))
	res, err := experiments.RunChaos(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println("# crash-schedule sweep: one fresh module + injected kill per mutating fs op, then recovery on a healthy disk")
	fmt.Printf("%-14s %13s %10s %10s %12s %12s %12s\n",
		"layout", "crash-points", "acked-lost", "rec-fail", "extra-replay", "rec-mean(us)", "rec-max(us)")
	for _, sweep := range []experiments.ChaosCrashSweep{res.SingleTree, res.Sharded} {
		fmt.Printf("%-14s %13d %10d %10d %12d %12.0f %12.0f\n",
			sweep.Layout, sweep.CrashPoints, sweep.AckedLost, sweep.RecoveryFailures,
			sweep.ExtraReplayed, sweep.RecoveryMeanMicros, sweep.RecoveryMaxMicros)
	}
	d := res.Degraded
	fmt.Println("\n# degraded mode: journal disk goes bad after the acked inserts; module must flip read-only, not lie")
	fmt.Printf("acked=%d  insert rejections: typed=%d untyped=%d  reads: %d/%d ok (availability %.3f, parity %v)\n",
		d.AckedBefore, d.TypedRejections, d.UntypedErrors, d.ReadsOK, d.ReadsAttempted, d.ReadAvailability, d.ParityOK)
	fmt.Printf("recovery on healthy disk: %.0fus, clean=%v\n", d.RecoveryMicros, d.RecoveredOK)
	q := res.Quota
	fmt.Println("\n# quota governance: vertex quota admits exactly the headroom; reads stay live at full occupancy")
	fmt.Printf("max_vertices=%d  accepted=%d  rejections: typed=%d untyped=%d  reads: %d/%d ok (availability %.3f, parity %v)\n",
		q.MaxVertices, q.Accepted, q.TypedRejections, q.UntypedErrors, q.ReadsOK, q.ReadsAttempted, q.ReadAvailability, q.ParityOK)
	fmt.Println()
	if report != nil {
		report.Chaos = &res
	}
}

// runLifecycleBench runs the bypass-lifecycle figure: the drifting soak
// with aging+compaction against an aging-off control (bounded memory at
// stable hit rate vs unbounded growth), then the compaction
// crash-schedule sweep on both durable layouts (recovery must land on a
// pre- or post-compaction census bitwise — never a hybrid).
func runLifecycleBench(seed int64, inserts int, horizon uint64, compactEvery int) {
	cfg := experiments.DefaultLifecycleConfig()
	cfg.Seed = seed
	if inserts > 0 {
		cfg.Inserts = inserts
	}
	if horizon > 0 {
		cfg.AgeHorizon = horizon
	}
	if compactEvery > 0 {
		cfg.CompactEvery = compactEvery
	}
	header(fmt.Sprintf("Lifecycle: aging horizon %d, compaction every %d of %d drifting inserts (D=%d P=%d)",
		cfg.AgeHorizon, cfg.CompactEvery, cfg.Inserts, cfg.D, cfg.P))
	res, err := experiments.RunLifecycle(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println("# drifting soak: query window moves across the simplex; old vertices stop being reinforced")
	for _, s := range []experiments.LifecycleSeries{res.Aging, res.Control} {
		fmt.Printf("\n# mode %s (horizon %d): %d compactions reclaimed %d vertices; peak %d points, final %d\n",
			s.Mode, s.AgeHorizon, s.Compactions, s.Reclaimed, s.PeakPoints, s.FinalPoints)
		fmt.Printf("%-10s %10s %12s %12s %12s %9s\n", "inserts", "points", "bytes(KB)", "heap(MB)", "rss(MB)", "hit-rate")
		for _, p := range s.Samples {
			fmt.Printf("%-10d %10d %12.1f %12.1f %12.1f %8.1f%%\n",
				p.Inserts, p.Points, float64(p.SizeBytes)/1024,
				float64(p.HeapAllocBytes)/(1<<20), float64(p.RSSBytes)/(1<<20), 100*p.HitRate)
		}
	}
	fmt.Println("\n# compaction crash sweep: one fresh module + injected kill per mutating fs op, recovery checked against the healthy census sequence")
	fmt.Printf("%-14s %13s %10s %10s %8s %10s %10s\n",
		"layout", "crash-points", "rec-fail", "acked-lost", "hybrid", "post-comp", "in-flight")
	for _, sweep := range []experiments.LifecycleCrashSweep{res.SingleTree, res.Sharded} {
		fmt.Printf("%-14s %13d %10d %10d %8d %10d %10d\n",
			sweep.Layout, sweep.CrashPoints, sweep.RecoveryFailures, sweep.AckedLost,
			sweep.HybridStates, sweep.PostCompaction, sweep.InFlightReplayed)
	}
	fmt.Println()
	if report != nil {
		report.Lifecycle = &res
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fbbench:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// printSeries renders several series sharing an X axis as one table and
// records them for the -json report.
func printSeries(xLabel string, series ...*eval.Series) {
	record(xLabel, series...)
	const colWidth = 28
	fmt.Printf("%-12s", xLabel)
	for _, s := range series {
		label := s.Label
		if len(label) > colWidth-2 {
			label = label[:colWidth-2]
		}
		fmt.Printf("%*s", colWidth, label)
	}
	fmt.Println()
	if len(series) == 0 || series[0].Len() == 0 {
		fmt.Println("(no data)")
		return
	}
	for i := range series[0].X {
		fmt.Printf("%-12.4g", series[0].X[i])
		for _, s := range series {
			if i < s.Len() {
				fmt.Printf("%*.4f", colWidth, s.Y[i])
			} else {
				fmt.Printf("%*s", colWidth, "-")
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

func printFigure1(s *experiments.Session) {
	header("Figure 1: default vs. FeedbackBypass results for one query")
	// Pick the first Mammal query of the stream, echoing the paper's
	// example.
	itemIdx := -1
	for _, r := range s.Records {
		if r.Category == "Mammal" {
			itemIdx = r.ItemIndex
			break
		}
	}
	if itemIdx < 0 {
		itemIdx = s.Records[0].ItemIndex
	}
	res, err := experiments.Figure1(s, itemIdx, 5)
	if err != nil {
		fail(err)
	}
	fmt.Printf("query: item %d, category %s\n\n", res.QueryIndex, res.QueryCategory)
	fmt.Printf("%-28s %s\n", "Default results", "FeedbackBypass results")
	for i := range res.DefaultTop {
		d := res.DefaultTop[i]
		b := res.BypassTop[i]
		fmt.Printf("%-28s %s\n", lineOf(d), lineOf(b))
	}
	fmt.Printf("\nrelevant in top 5: default %d, FeedbackBypass %d\n\n", res.GoodDefault, res.GoodBypass)
}

func lineOf(l experiments.ResultLine) string {
	mark := " "
	if l.Good {
		mark = "*"
	}
	return fmt.Sprintf("%s %-10s/%-9s d=%.3f", mark, l.Category, l.Theme, l.Distance)
}

func printFigure9(s *experiments.Session) {
	header("Figure 9: sample images from the Fish category (theme diversity)")
	samples, err := experiments.Figure9(s, "Fish", 4)
	if err != nil {
		fail(err)
	}
	for _, smp := range samples {
		fmt.Printf("item %5d  theme=%-10s dominant bins=%v\n", smp.ItemIndex, smp.Theme, smp.DominantBins)
	}
	fmt.Println()
}

func printFigure10(s *experiments.Session) {
	res, err := experiments.Figure10(s)
	if err != nil {
		fail(err)
	}
	header(fmt.Sprintf("Figure 10a: precision vs. no. of queries (k = %d)", res.K))
	printSeries("queries", res.Precision.AlreadySeen, res.Precision.Bypass, res.Precision.Default)
	header("Figure 10b: precision gain (%) over Default")
	printSeries("queries", res.GainSeen, res.GainFB)
}

func printFigure11(s *experiments.Session, numEval int) {
	res, err := experiments.Figure11(s, nil, numEval)
	if err != nil {
		fail(err)
	}
	header("Figure 11a: precision vs. k (trained tree)")
	printSeries("k", res.Precision.AlreadySeen, res.Precision.Bypass, res.Precision.Default)
	header("Figure 11b: recall vs. k")
	printSeries("k", res.Recall.AlreadySeen, res.Recall.Bypass, res.Recall.Default)
	header("Figure 11c: precision vs. recall (X = recall)")
	printSeries("recall", res.PR.AlreadySeen, res.PR.Bypass, res.PR.Default)
}

func printFigure12(cfg experiments.Config) {
	fmt.Println("# Figure 12: training one session per k ... (slow)")
	res, err := experiments.Figure12(cfg, nil)
	if err != nil {
		fail(err)
	}
	header("Figure 12a: FeedbackBypass precision vs. no. of queries, per k")
	printSeries("queries", res.Precision...)
	header("Figure 12b: FeedbackBypass recall vs. no. of queries, per k")
	printSeries("queries", res.Recall...)
}

func printFigure13(cfg experiments.Config, numEval int) {
	fmt.Println("# Figure 13: training one session per k ... (slow)")
	res, err := experiments.Figure13(cfg, nil, nil, numEval)
	if err != nil {
		fail(err)
	}
	header("Figure 13a: precision vs. no. of retrieved objects, per training k")
	printSeries("retrieved", res.Precision...)
	header("Figure 13b: recall vs. no. of retrieved objects, per training k")
	printSeries("retrieved", res.Recall...)
}

func printFigure14(s *experiments.Session) {
	res, err := experiments.Figure14(s)
	if err != nil {
		fail(err)
	}
	header("Figure 14: per-category precision and recall")
	fmt.Printf("%-10s %8s %12s %12s %12s %12s %12s %12s\n",
		"category", "queries", "prec(seen)", "prec(FB)", "prec(def)", "rec(seen)", "rec(FB)", "rec(def)")
	for _, c := range res {
		fmt.Printf("%-10s %8d %12.4f %12.4f %12.4f %12.4f %12.4f %12.4f\n",
			c.Category, c.Queries, c.PrecSeen, c.PrecBypass, c.PrecDefault,
			c.RecallSeen, c.RecallBypass, c.RecallDefault)
	}
	fmt.Println()
}

func printFigure15(cfg experiments.Config) {
	fmt.Println("# Figure 15: savings sessions per k ... (slow)")
	res, err := experiments.Figure15(cfg, nil)
	if err != nil {
		fail(err)
	}
	header("Figure 15a: average saved feedback cycles vs. no. of queries")
	printSeries("queries", res.SavedCycles...)
	header("Figure 15b: average saved retrieved objects vs. no. of queries")
	printSeries("queries", res.SavedObjects...)
}

func printFigure16(s *experiments.Session) {
	res, err := experiments.Figure16(s)
	if err != nil {
		fail(err)
	}
	header("Figure 16: simplices traversed per query and tree depth")
	printSeries("queries", res.Traversed, res.Depth)
}
