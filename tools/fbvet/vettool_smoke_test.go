// Smoke tests proving fbvet integrates with the standard toolchain:
// the binary is built for real and driven through `go vet -vettool`
// against a scratch module, exactly as CI and developers run it.
//
// The scratch module deliberately re-introduces the two regressions the
// acceptance gate names — a direct os.Rename in an internal/persist
// package and a math.FMA call in an internal/vec package — and asserts
// the build fails with the right diagnostics; a clean module must pass.
package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildFbvet compiles the fbvet binary into a temp dir and returns its
// absolute path.
func buildFbvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building fbvet: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module with the given files and
// returns its root.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module smoke\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, vettool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestVettoolRejectsReintroducedViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go toolchain")
	}
	bin := buildFbvet(t)
	dir := scratchModule(t, map[string]string{
		"internal/persist/bad.go": `package persist

import "os"

func Commit(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
`,
		"internal/vec/bad.go": `package vec

import "math"

func Dot(a, b, acc float64) float64 {
	return math.FMA(a, b, acc)
}
`,
	})
	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet passed over a seam bypass and an FMA call; output:\n%s", out)
	}
	if !strings.Contains(out, "bypasses the persist.FS seam") {
		t.Errorf("missing fsseam diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "math.FMA is forbidden") {
		t.Errorf("missing kernelpurity diagnostic in output:\n%s", out)
	}
}

func TestVettoolPassesCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go toolchain")
	}
	bin := buildFbvet(t)
	dir := scratchModule(t, map[string]string{
		"internal/persist/good.go": `package persist

type FS interface {
	Rename(oldpath, newpath string) error
}

func Commit(fs FS, oldpath, newpath string) error {
	return fs.Rename(oldpath, newpath)
}
`,
	})
	if out, err := runVet(t, bin, dir); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

// TestVettoolWaiversHonored proves both waiver spellings survive the
// toolchain round-trip, not just the in-process harness.
func TestVettoolWaiversHonored(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go toolchain")
	}
	bin := buildFbvet(t)
	dir := scratchModule(t, map[string]string{
		"internal/persist/waived.go": `package persist

import "os"

func Sweep(path string) error {
	return os.Remove(path) //fbvet:ok smoke: deliberate bypass under test
}

func Drop(f *os.File) {
	f.Close() //errgate:ok smoke: legacy spelling
}
`,
	})
	if out, err := runVet(t, bin, dir); err != nil {
		t.Fatalf("go vet flagged waivered lines: %v\n%s", err, out)
	}
}
