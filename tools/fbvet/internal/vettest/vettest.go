// Package vettest is the fixture harness for the fbvet analyzers — a
// self-contained analogue of golang.org/x/tools/go/analysis/analysistest
// honoring the same `// want "regexp"` convention. The real analysistest
// depends on go/packages, which sits outside the vendored x/tools
// subset (see the dependency policy in DESIGN.md), so this harness
// drives the pass itself: it parses a fixture directory as one package,
// type-checks it against the standard library via the source importer,
// runs the analyzer's Requires closure, and diffs reported diagnostics
// against the fixture's expectations line by line.
//
// Expectation syntax: a comment `// want "rx"` (one or more Go-quoted
// or backquoted regexps) expects, on its own line, one diagnostic
// matching each regexp. Diagnostics on lines with no matching
// expectation, and expectations left unmatched, fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Pkg names one fixture package: the directory holding its .go files
// and the import path to type-check it under. Analyzers gate on package
// paths, so fixtures pick paths like "fixture/internal/persist" to land
// inside (or outside) an analyzer's scope.
type Pkg struct {
	Dir  string
	Path string
}

// Run loads the fixture package, applies the analyzer, and reports any
// mismatch between diagnostics and `// want` expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, pkg Pkg) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkg.Dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg.Path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	var run func(x *analysis.Analyzer) error
	run = func(x *analysis.Analyzer) error {
		if _, done := results[x]; done {
			return nil
		}
		for _, dep := range x.Requires {
			if err := run(dep); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   x,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Module:     &analysis.Module{Path: "fixture"},
			Report: func(d analysis.Diagnostic) {
				if x == a {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := x.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", x.Name, err)
		}
		results[x] = res
		return nil
	}
	if err := run(a); err != nil {
		t.Fatalf("running analyzer: %v", err)
	}

	checkExpectations(t, fset, files, diags)
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// checkExpectations diffs diagnostics against `// want` comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range tokenizeQuoted(m[1]) {
					rx, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, q, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}

// tokenizeQuoted splits `"rx1" "rx2"` / backquoted segments out of a
// want comment's payload.
func tokenizeQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			if q, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, q)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
