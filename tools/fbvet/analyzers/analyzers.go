// Package analyzers is the registry of the fbvet suite: the five
// repo-native invariant analyzers plus the upstream x/tools passes the
// repo runs through the same vettool (copylocks — a by-value copy of a
// struct holding one of our RWMutexes silently forks the lock — plus
// atomic and lostcancel). nilness is deliberately absent: it requires
// go/ssa, which is outside the vendored golang.org/x/tools subset; see
// the dependency policy in DESIGN.md.
package analyzers

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"

	"repro/tools/fbvet/analyzers/errgate"
	"repro/tools/fbvet/analyzers/fsseam"
	"repro/tools/fbvet/analyzers/kernelpurity"
	"repro/tools/fbvet/analyzers/lockdiscipline"
	"repro/tools/fbvet/analyzers/sentinelwrap"
)

// All returns the full fbvet suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		fsseam.Analyzer,
		kernelpurity.Analyzer,
		sentinelwrap.Analyzer,
		lockdiscipline.Analyzer,
		errgate.Analyzer,
		copylock.Analyzer,
		atomic.Analyzer,
		lostcancel.Analyzer,
	}
}
