// Fixture for the sentinelwrap analyzer: type-checked under
// "fixture/internal/store", so the errors.Is-ability contract applies.
package store

import (
	"errors"
	"fmt"
)

// ErrCorrupt mirrors the production sentinel.
var ErrCorrupt = errors.New("store: corrupt")

func flattened(err error) error {
	return fmt.Errorf("parse failed: %v", err) // want `error err formatted with %v; use %w`
}

func flattenedString(err error) error {
	return fmt.Errorf("parse failed: %s", err) // want `error err formatted with %s; use %w`
}

func stringified(err error) error {
	return fmt.Errorf("parse failed: %s", err.Error()) // want `err\.Error\(\) stringifies the error`
}

func wrapped(err error) error {
	return fmt.Errorf("%w: parse failed: %w", ErrCorrupt, err)
}

func noErrorOperand(n, dim int) error {
	return fmt.Errorf("bad shape %dx%d", n, dim)
}

func widthArgs(pad int, err error) error {
	return fmt.Errorf("%*d uses: %w", pad, pad, err)
}

func explicitIndexSkipped(err error) error {
	// Explicit argument indexes are outside the analyzer's model.
	return fmt.Errorf("%[1]v", err)
}

func waived(err error) error {
	return fmt.Errorf("cause: %v", err) //fbvet:ok fixture: message deliberately flattens an untrusted error
}
