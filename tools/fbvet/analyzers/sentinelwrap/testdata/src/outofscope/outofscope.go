// Fixture type-checked under "fixture/internal/experiments" — outside
// the sentinel domains, so %v on an error is tolerated.
package experiments

import "fmt"

func report(err error) error {
	return fmt.Errorf("figure failed: %v", err)
}
