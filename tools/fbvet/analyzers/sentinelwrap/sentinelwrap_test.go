package sentinelwrap_test

import (
	"testing"

	"repro/tools/fbvet/analyzers/sentinelwrap"
	"repro/tools/fbvet/internal/vettest"
)

func TestWrapViolationsAndWaivers(t *testing.T) {
	vettest.Run(t, sentinelwrap.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/wrap",
		Path: "fixture/internal/store",
	})
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	vettest.Run(t, sentinelwrap.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/outofscope",
		Path: "fixture/internal/experiments",
	})
}
