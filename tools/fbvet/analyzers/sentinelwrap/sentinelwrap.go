// Package sentinelwrap enforces the error-chain contract of the
// serving and persistence layers (internal/service, internal/persist,
// internal/store, internal/ann, internal/core): the HTTP status
// mapping, the degraded-mode latch and every test in the fault plane
// dispatch on errors.Is/errors.As, so an error that reaches fmt.Errorf
// must be wrapped with %w, not flattened to text with %v/%s — and
// never pre-stringified with err.Error(). One %v in a parse path turns
// an ErrCorrupt-family failure into an unclassifiable string and the
// wrong HTTP status.
//
// Only constant format strings are analyzed; explicit argument indexes
// ([1]) are rare enough that such calls are skipped. _test.go files are
// exempt; deliberate flattening carries //fbvet:ok <reason>.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/fbvet/analyzers/internal/lint"
)

// Domains are the packages whose errors must stay errors.Is-able.
var Domains = []string{
	"internal/service",
	"internal/persist",
	"internal/store",
	"internal/ann",
	"internal/core",
}

var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc: "errors passed to fmt.Errorf in the sentinel-bearing packages " +
		"must use %w (not %v/%s or err.Error()) so errors.Is keeps working",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lint.Scoped(pass, Domains...) {
		return nil, nil
	}
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waivers := lint.CollectWaivers(pass)
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	isError := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		return t != nil && types.Implements(t, errIface)
	}

	in.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
			return
		}
		if len(call.Args) < 2 || call.Ellipsis.IsValid() {
			return
		}
		if lint.InTestFile(pass, call.Pos()) || waivers.Waived(call.Pos()) {
			return
		}

		// An error stringified before formatting defeats the verb check;
		// catch err.Error() arguments regardless of the format string.
		for _, arg := range call.Args[1:] {
			if c, ok := arg.(*ast.CallExpr); ok {
				if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(c.Args) == 0 && isError(sel.X) {
					pass.Reportf(arg.Pos(), "fmt.Errorf argument %s.Error() stringifies the error; pass the error itself with %%w so errors.Is/As see the chain (//fbvet:ok <reason> to waive)", lint.ExprString(sel.X))
				}
			}
		}

		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return
		}
		verbs, ok := parseVerbs(constant.StringVal(tv.Value))
		if !ok {
			return
		}
		args := call.Args[1:]
		for i, v := range verbs {
			if i >= len(args) {
				break
			}
			if v != 'w' && isError(args[i]) {
				pass.Reportf(args[i].Pos(), "error %s formatted with %%%c; use %%w so errors.Is/As see the chain (//fbvet:ok <reason> to waive)", lint.ExprString(args[i]), v)
			}
		}
	})
	return nil, nil
}

// parseVerbs returns, in argument order, the verb rune that consumes
// each argument of the format string. '*' width/precision arguments
// appear as '*'. Returns ok=false for formats it does not model
// (explicit argument indexes).
func parseVerbs(format string) (verbs []rune, ok bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags
		for i < len(rs) && (rs[i] == '#' || rs[i] == '+' || rs[i] == '-' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// width
		for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
			if rs[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
				if rs[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		if rs[i] == '[' {
			return nil, false // explicit argument index: out of scope
		}
		verbs = append(verbs, rs[i])
	}
	return verbs, true
}
