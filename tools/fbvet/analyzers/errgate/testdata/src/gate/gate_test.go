// Test files are exempt, as in the standalone walker.
package gate

import "os"

func testOnlyDiscard(f *os.File) {
	f.Close()
}
