// Fixture for the errgate analyzer port: bare statements discarding
// I/O errors, both waiver spellings, and the type-informed refinement.
package gate

import (
	"encoding/json"
	"io"
	"os"
)

func bare(f *os.File) {
	f.Close() // want `result of f\.Close\(\) is discarded`
}

func bareEncode(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want `result of \(\.\.\.\)\.Encode\(\) is discarded`
}

func waivedLegacySpelling(f *os.File) {
	f.Close() //errgate:ok fixture: legacy waiver spelling must keep working
}

func waivedUnifiedSpelling(f *os.File) {
	f.Close() //fbvet:ok fixture: unified waiver spelling
}

func explicitDiscard(f *os.File) {
	_ = f.Close()
}

func deferredOutOfScope(f *os.File) {
	defer f.Close()
}

type closerNoError interface {
	Close()
}

// errorlessClose is the type-informed refinement: the name matches but
// the call returns no error, so there is nothing to discard.
func errorlessClose(c closerNoError) {
	c.Close()
}
