// Package errgate is the go/analysis port of the standalone
// tools/errgate walker: it fails the build when a call whose name
// promises an I/O error (Close, Sync, Remove, ...) is used as a bare
// statement, silently discarding that error. The persistence layer is
// exactly where a swallowed error turns into acknowledged-insert loss —
// a Sync whose failure nobody sees is a durability lie.
//
// The port keeps the original's narrow name-based contract and waiver
// spelling (`//errgate:ok <reason>` still works, alongside the unified
// `//fbvet:ok <reason>`), and adds one type-informed refinement the
// parser-only walker could not: a call whose results include no error
// is never flagged, whatever it is named.
//
// Every intentional discard must be spelled `_ = f.Close()` (visible in
// review) or carry a waiver. Test files are exempt; `defer` and `go`
// statements are out of scope (their result is unrecoverable by
// construction).
package errgate

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/tools/fbvet/analyzers/internal/lint"
)

// LegacyMarker is the waiver spelling of the standalone tools/errgate;
// existing waivers keep working under the analyzer port.
const LegacyMarker = "errgate:ok"

// risky holds method/function names that, on every I/O-bearing type in
// this module (os.File, persist.File, persist.FS, *core.DurableBypass,
// json.Encoder, http.Server, ...), return an error worth looking at.
// Kept identical to the standalone walker's set.
var risky = map[string]bool{
	"Close":     true,
	"Sync":      true,
	"SyncDir":   true,
	"Flush":     true,
	"Remove":    true,
	"RemoveAll": true,
	"Rename":    true,
	"Truncate":  true,
	"Setenv":    true,
	"Shutdown":  true,
	"Encode":    true,
	"Compact":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: "errgate",
	Doc: "forbid bare-statement calls that discard an I/O error " +
		"(Close/Sync/Remove/...); spell intentional discards `_ = ...` " +
		"or waive with //errgate:ok or //fbvet:ok",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waivers := lint.CollectWaivers(pass, LegacyMarker)

	in.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		stmt := n.(*ast.ExprStmt)
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !risky[sel.Sel.Name] {
			return
		}
		if !returnsError(pass.TypesInfo, call) {
			return
		}
		if lint.InTestFile(pass, stmt.Pos()) || waivers.Waived(stmt.Pos()) {
			return
		}
		callee := lint.ExprString(sel)
		pass.Reportf(stmt.Pos(), "result of %s() is discarded; use `_ = %s()` or add //fbvet:ok <reason>", callee, callee)
	})
	return nil, nil
}

// returnsError reports whether any result of the call is an error. When
// the callee's signature cannot be resolved it errs on the side of the
// original name-based behavior and returns true.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return true
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
