package errgate_test

import (
	"testing"

	"repro/tools/fbvet/analyzers/errgate"
	"repro/tools/fbvet/internal/vettest"
)

func TestDiscardsWaiversAndRefinement(t *testing.T) {
	vettest.Run(t, errgate.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/gate",
		Path: "fixture/cmd/gate",
	})
}
