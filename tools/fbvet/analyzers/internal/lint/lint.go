// Package lint holds the small amount of machinery shared by every
// fbvet analyzer: package-scope gating, test-file detection, and the
// waiver protocol.
//
// Waivers: a diagnostic is suppressed when the offending line — or the
// comment line immediately above it — carries a `//fbvet:ok <reason>`
// comment. The reason is mandatory by convention (it is the reviewer's
// record of why the invariant does not apply) but not enforced
// mechanically. Analyzers may accept additional legacy markers
// (errgate accepts `//errgate:ok`).
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Marker is the canonical waiver comment marker.
const Marker = "fbvet:ok"

// Scoped reports whether the package under analysis is inside one of
// the named domains (e.g. "internal/persist"). A domain matches the
// package itself and any package below it. Fixture packages under
// testdata get paths like "fixture/internal/persist" so the same gate
// applies to them.
func Scoped(pass *analysis.Pass, domains ...string) bool {
	return PathScoped(pass.Pkg.Path(), domains...)
}

// PathScoped is Scoped over a raw import path.
func PathScoped(pkgPath string, domains ...string) bool {
	for _, d := range domains {
		if pkgPath == d || strings.HasSuffix(pkgPath, "/"+d) ||
			strings.Contains(pkgPath+"/", "/"+d+"/") {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file. Most fbvet
// invariants bind production code only; tests may exercise forbidden
// operations deliberately (fault injection, fixtures, parity oracles).
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// Waivers records, per file line, which waiver markers appear there.
type Waivers struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> line -> waived
}

// CollectWaivers scans every comment in the package for the given
// markers (Marker is always included) and records the lines they
// annotate.
func CollectWaivers(pass *analysis.Pass, extraMarkers ...string) *Waivers {
	markers := append([]string{Marker}, extraMarkers...)
	w := &Waivers{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !containsAny(c.Text, markers) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := w.lines[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					w.lines[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	return w
}

func containsAny(s string, subs []string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// Waived reports whether pos is covered by a waiver: a marker on the
// same line (trailing comment) or on the line directly above it (a
// standalone comment, for lines too long to carry a trailer).
func (w *Waivers) Waived(pos token.Pos) bool {
	p := w.fset.Position(pos)
	m := w.lines[p.Filename]
	if m == nil {
		return false
	}
	return m[p.Line] || m[p.Line-1]
}

// ReceiverTypeName returns the base type name of a FuncDecl's receiver
// ("" for plain functions). Pointer receivers are unwrapped.
func ReceiverTypeName(fn *ast.FuncDecl) string {
	if fn == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic type parameters (T[P]).
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// ExprString renders a dotted selector path (`db.fs.Remove`) for
// diagnostics and receiver matching; anything non-trivial collapses.
func ExprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return ExprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return ExprString(v.X)
	default:
		return "(...)"
	}
}
