package fsseam_test

import (
	"testing"

	"repro/tools/fbvet/analyzers/fsseam"
	"repro/tools/fbvet/internal/vettest"
)

func TestSeamViolationsAndWaivers(t *testing.T) {
	vettest.Run(t, fsseam.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/seam",
		Path: "fixture/internal/persist",
	})
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	vettest.Run(t, fsseam.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/outofscope",
		Path: "fixture/internal/other",
	})
}
