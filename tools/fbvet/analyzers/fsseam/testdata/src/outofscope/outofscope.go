// Fixture type-checked under "fixture/internal/other" — outside the
// seam domains, so direct os calls are fine here.
package other

import "os"

func free(path string) error {
	return os.Remove(path)
}
