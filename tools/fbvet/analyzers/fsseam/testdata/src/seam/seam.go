// Fixture for the fsseam analyzer: type-checked under the import path
// "fixture/internal/persist", so the seam rules apply.
package persist

import "os"

// FS is a stand-in for the real persist.FS seam.
type FS interface {
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

func direct(path string) error {
	return os.Rename(path, path+".new") // want `direct os\.Rename bypasses the persist\.FS seam`
}

func directCreate(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the persist\.FS seam`
	if err != nil {
		return err
	}
	return f.Close()
}

func waivedTrailing(path string) error {
	return os.Remove(path) //fbvet:ok fixture: cleanup outside the crash schedules
}

func waivedPreceding(path string) error {
	//fbvet:ok fixture: read-only open outside the crash schedules
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// routed is the sanctioned shape: filesystem access through the seam.
func routed(fs FS, oldpath, newpath string) error {
	return fs.Rename(oldpath, newpath)
}

// osFS mirrors the production seam bottom; its methods are exempt.
type osFS struct{}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
