// Test files are exempt from the seam: they build fixtures and verify
// on-disk bytes out-of-band. No diagnostics expected here.
package persist

import "os"

func testOnlyHelper(path string) error {
	return os.Rename(path, path+".bak")
}
