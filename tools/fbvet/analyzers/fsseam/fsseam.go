// Package fsseam enforces the persist.FS seam: inside the persistence
// domains (internal/persist, internal/store, internal/ann,
// internal/core, internal/shardedbypass) no production code may touch
// the filesystem through the os package directly. Everything must flow
// through persist.FS, because internal/faultfs substitutes that seam to
// enumerate crash schedules — a direct os.Rename is an fsync/rename
// crash point the chaos harness can neither see nor fail, which
// silently shrinks the "zero acknowledged-insert loss" proof.
//
// Exemptions: _test.go files (they build fixtures and verify on-disk
// bytes out-of-band), methods of the osFS production implementation
// (the seam's own bottom), and lines waived with `//fbvet:ok <reason>`
// (e.g. mmap open paths that need a real file descriptor).
package fsseam

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/fbvet/analyzers/internal/lint"
)

// Domains are the package subtrees whose filesystem access must flow
// through the persist.FS seam.
var Domains = []string{
	"internal/persist",
	"internal/store",
	"internal/ann",
	"internal/core",
	"internal/shardedbypass",
}

// forbidden lists the os package functions that constitute filesystem
// access the faultfs crash schedules need to interpose on.
var forbidden = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"Open":       true,
	"OpenFile":   true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"WriteFile":  true,
	"ReadFile":   true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"Truncate":   true,
	"Link":       true,
	"Symlink":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "fsseam",
	Doc: "forbid direct os filesystem calls in the persistence domains; " +
		"all I/O must flow through the persist.FS seam so faultfs crash " +
		"schedules stay exhaustive",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lint.Scoped(pass, Domains...) {
		return nil, nil
	}
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waivers := lint.CollectWaivers(pass)

	in.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !forbidden[fn.Name()] {
			return true
		}
		if lint.InTestFile(pass, call.Pos()) || waivers.Waived(call.Pos()) {
			return true
		}
		// The osFS methods in internal/persist are the seam's bottom:
		// the one place direct os calls are the point.
		for _, anc := range stack {
			if fd, ok := anc.(*ast.FuncDecl); ok && lint.ReceiverTypeName(fd) == "osFS" {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"direct os.%s bypasses the persist.FS seam (route through persist.FS so faultfs crash schedules cover it, or waive with //fbvet:ok <reason>)",
			fn.Name())
		return true
	})
	return nil, nil
}
