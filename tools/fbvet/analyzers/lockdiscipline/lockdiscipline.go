// Package lockdiscipline polices the repo's lock-domain rules around
// sync.Mutex / sync.RWMutex:
//
//  1. Read-domain purity. The read path (Predict, cache lookups, stats)
//     is specified to be a pure RLock region — blocking I/O or a
//     channel send while holding a read lock stalls every reader and
//     inverts the "reads stay live in degraded mode" guarantee. Between
//     an RLock and its RUnlock (or to the end of the block after a
//     `defer RUnlock`), calls named Sync/SyncDir/Fsync/Flush/Truncate,
//     any direct os filesystem call, and channel sends are forbidden.
//     (Exclusive-Lock regions are deliberately NOT policed for I/O: the
//     write-ahead design fsyncs the WAL under the exclusive tree lock.)
//
//  2. Pairing. A function that takes a lock must release it on some
//     path in the same function (directly or via defer), and must
//     release it with the matching method: RLock pairs with RUnlock,
//     Lock with Unlock. Split lock/unlock helper functions carry a
//     //fbvet:ok <reason> waiver on the lock call.
//
// The analysis is an intra-function, same-block heuristic: it does not
// chase locks across function boundaries, which keeps it silent on the
// `fooLocked()` callee convention. _test.go files are exempt.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/fbvet/analyzers/internal/lint"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "enforce RLock-region purity (no file I/O or channel sends under a " +
		"read lock) and Lock/Unlock pairing-and-kind matching within a function",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// ioNames are method names that promise blocking file I/O on every
// I/O-bearing type in this module (persist.File, persist.FS, *os.File,
// *bufio.Writer, *persist.WAL, ...). Name-based on purpose: the read
// path holds no I/O-bearing value whose Sync/Flush is benign.
var ioNames = map[string]bool{
	"Sync":     true,
	"SyncDir":  true,
	"Fsync":    true,
	"Flush":    true,
	"Truncate": true,
}

// mutexOp is one Lock-family call on a sync mutex.
type mutexOp struct {
	key      string // rendered receiver expression, e.g. "db.mu"
	name     string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
	deferred bool
	pos      ast.Node
}

func run(pass *analysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waivers := lint.CollectWaivers(pass)

	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lint.InTestFile(pass, fd.Pos()) {
			return
		}
		checkPairing(pass, fd, waivers)
	})

	// Region purity is a per-statement-list property; walk every list.
	in.Preorder([]ast.Node{
		(*ast.BlockStmt)(nil),
		(*ast.CaseClause)(nil),
		(*ast.CommClause)(nil),
	}, func(n ast.Node) {
		if lint.InTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			checkRLockRegion(pass, n.List, waivers)
		case *ast.CaseClause:
			checkRLockRegion(pass, n.Body, waivers)
		case *ast.CommClause:
			checkRLockRegion(pass, n.Body, waivers)
		}
	})
	return nil, nil
}

// syncMutexOp resolves call to a sync.Mutex/sync.RWMutex method and
// returns the op, or ok=false.
func syncMutexOp(info *types.Info, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	fn := typeutil.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return mutexOp{key: lint.ExprString(sel.X), name: fn.Name(), pos: call}, true
	}
	return mutexOp{}, false
}

// checkPairing verifies, per mutex key, that locks taken anywhere in fd
// are released somewhere in fd, with the matching release kind.
func checkPairing(pass *analysis.Pass, fd *ast.FuncDecl, waivers *lint.Waivers) {
	type tally struct {
		lock, unlock, rlock, runlock int
		firstLock, firstRLock        ast.Node
	}
	tallies := map[string]*tally{}
	get := func(key string) *tally {
		t := tallies[key]
		if t == nil {
			t = &tally{}
			tallies[key] = t
		}
		return t
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := syncMutexOp(pass.TypesInfo, call)
		if !ok {
			return true
		}
		t := get(op.key)
		switch op.name {
		case "Lock":
			t.lock++
			if t.firstLock == nil {
				t.firstLock = call
			}
		case "Unlock":
			t.unlock++
		case "RLock":
			t.rlock++
			if t.firstRLock == nil {
				t.firstRLock = call
			}
		case "RUnlock":
			t.runlock++
		}
		return true
	})
	for key, t := range tallies {
		if t.lock > 0 && t.unlock == 0 {
			if waivers.Waived(t.firstLock.Pos()) {
				continue
			}
			if t.runlock > 0 && t.rlock == 0 {
				pass.Reportf(t.firstLock.Pos(), "%s.Lock() released with RUnlock — a write lock released as a read lock corrupts the mutex state", key)
			} else {
				pass.Reportf(t.firstLock.Pos(), "%s.Lock() has no matching Unlock in this function; if the pair is split across functions, waive with //fbvet:ok <reason>", key)
			}
		}
		if t.rlock > 0 && t.runlock == 0 {
			if waivers.Waived(t.firstRLock.Pos()) {
				continue
			}
			if t.unlock > 0 && t.lock == 0 {
				pass.Reportf(t.firstRLock.Pos(), "%s.RLock() released with Unlock — an RLock released with Unlock corrupts the RWMutex state", key)
			} else {
				pass.Reportf(t.firstRLock.Pos(), "%s.RLock() has no matching RUnlock in this function; if the pair is split across functions, waive with //fbvet:ok <reason>", key)
			}
		}
	}
}

// checkRLockRegion scans one statement list for read-locked regions and
// reports blocking operations inside them. A region opens at an
// ExprStmt `k.RLock()` and closes at an ExprStmt `k.RUnlock()`; a
// `defer k.RUnlock()` keeps the region open to the end of the list.
func checkRLockRegion(pass *analysis.Pass, stmts []ast.Stmt, waivers *lint.Waivers) {
	held := map[string]bool{}
	for _, s := range stmts {
		if op, ok := stmtMutexOp(pass.TypesInfo, s); ok {
			switch op.name {
			case "RLock":
				held[op.key] = true
				continue
			case "RUnlock":
				if !op.deferred {
					delete(held, op.key)
					continue
				}
				// defer RUnlock: region stays open; the defer itself is fine.
				continue
			}
		}
		if len(held) == 0 {
			continue
		}
		reportBlockingOps(pass, s, waivers)
	}
}

// stmtMutexOp recognizes `k.Op()` and `defer k.Op()` statements.
func stmtMutexOp(info *types.Info, s ast.Stmt) (mutexOp, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return syncMutexOp(info, call)
		}
	case *ast.DeferStmt:
		op, ok := syncMutexOp(info, s.Call)
		op.deferred = true
		return op, ok
	}
	return mutexOp{}, false
}

// reportBlockingOps walks one statement inside a read-locked region and
// flags channel sends and file I/O. Function literals are skipped: a
// goroutine or callback body does not run under the caller's lock.
func reportBlockingOps(pass *analysis.Pass, s ast.Stmt, waivers *lint.Waivers) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if !waivers.Waived(n.Pos()) {
				pass.Reportf(n.Pos(), "channel send while holding an RLock can block every reader; move the send outside the read-locked region (//fbvet:ok <reason> to waive)")
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := typeutil.StaticCallee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
				if !waivers.Waived(n.Pos()) {
					pass.Reportf(n.Pos(), "os.%s while holding an RLock blocks every reader on disk latency; move the I/O outside the read-locked region (//fbvet:ok <reason> to waive)", fn.Name())
				}
				return true
			}
			if ioNames[sel.Sel.Name] {
				if !waivers.Waived(n.Pos()) {
					pass.Reportf(n.Pos(), "%s() while holding an RLock blocks every reader on disk latency; move the I/O outside the read-locked region (//fbvet:ok <reason> to waive)", lint.ExprString(sel))
				}
			}
		}
		return true
	})
}
