// Fixture for the lockdiscipline analyzer. Scope is repo-wide, so the
// import path does not matter; "fixture/internal/service" keeps it
// realistic.
package service

import (
	"os"
	"sync"
)

type syncer interface {
	Sync() error
}

type guarded struct {
	mu   sync.RWMutex
	file syncer
	ch   chan int
	n    int
}

func (g *guarded) leakedLock() {
	g.mu.Lock() // want `g\.mu\.Lock\(\) has no matching Unlock`
	g.n++
}

func (g *guarded) mismatchedKind() int {
	g.mu.RLock() // want `g\.mu\.RLock\(\) released with Unlock`
	defer g.mu.Unlock()
	return g.n
}

func (g *guarded) ioUnderReadLock() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.file.Sync() // want `Sync\(\) while holding an RLock`
}

func (g *guarded) osCallUnderReadLock(path string) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return os.Remove(path) // want `os\.Remove while holding an RLock`
}

func (g *guarded) sendUnderReadLock(v int) {
	g.mu.RLock()
	g.ch <- v // want `channel send while holding an RLock`
	g.mu.RUnlock()
}

func (g *guarded) sendAfterRelease(v int) {
	g.mu.RLock()
	n := g.n
	g.mu.RUnlock()
	g.ch <- n + v
}

// ioUnderWriteLock is the write-ahead design: fsync under the exclusive
// lock is deliberate and not policed.
func (g *guarded) ioUnderWriteLock() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.file.Sync()
}

func (g *guarded) goroutineBodyNotHeld() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	go func() {
		g.ch <- 1
	}()
}

func (g *guarded) lockHelper() {
	g.mu.Lock() //fbvet:ok fixture: released by unlockHelper
}

func (g *guarded) unlockHelper() {
	g.mu.Unlock()
}
