package lockdiscipline_test

import (
	"testing"

	"repro/tools/fbvet/analyzers/lockdiscipline"
	"repro/tools/fbvet/internal/vettest"
)

func TestLockViolationsAndWaivers(t *testing.T) {
	vettest.Run(t, lockdiscipline.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/locks",
		Path: "fixture/internal/service",
	})
}
