// Package kernelpurity polices the determinism contract of the kernel
// packages (internal/vec, internal/knn, internal/ann, internal/geom).
// Every optimized path in those packages is pinned bitwise against a
// portable reference, and the ann quantizer is pinned by golden FNV
// hashes, so anything that can change results between runs, platforms
// or Go releases is forbidden in production code:
//
//   - math.FMA: fused multiply-add rounds once where a*b+c rounds
//     twice; a single call breaks the bitwise-parity suites.
//   - math/rand (and v2): the stream behind a seed is not specified
//     across Go releases; the repo's splitmix64 is the only sanctioned
//     PRNG (pinned by reference-output tests).
//   - time.Now: wall-clock input makes output run-dependent.
//   - ranging over a map while accumulating: map iteration order is
//     deliberately randomized, so order-sensitive accumulation differs
//     run to run. Extract and sort the keys first.
//
// _test.go files are exempt; deliberate uses carry //fbvet:ok <reason>.
package kernelpurity

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/fbvet/analyzers/internal/lint"
)

// Domains are the bitwise-pinned kernel packages.
var Domains = []string{
	"internal/vec",
	"internal/knn",
	"internal/ann",
	"internal/geom",
}

// forbiddenCalls maps package path -> function name -> reason.
var forbiddenCalls = map[string]map[string]string{
	"math": {
		"FMA": "fuses the multiply-add rounding and breaks the bitwise-parity pins (the no-FMA dispatch discipline is deliberate)",
	},
	"time": {
		"Now": "wall-clock input makes kernel output run-dependent",
	},
}

// forbiddenImports are packages that must not appear at all.
var forbiddenImports = map[string]string{
	"math/rand":    "its stream for a given seed is unspecified across Go releases; use the repo's splitmix64",
	"math/rand/v2": "its stream for a given seed is unspecified across Go releases; use the repo's splitmix64",
}

var Analyzer = &analysis.Analyzer{
	Name: "kernelpurity",
	Doc: "forbid math.FMA, math/rand, time.Now and map-ordered iteration " +
		"in the bitwise-pinned kernel packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lint.Scoped(pass, Domains...) {
		return nil, nil
	}
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waivers := lint.CollectWaivers(pass)

	in.Preorder([]ast.Node{
		(*ast.ImportSpec)(nil),
		(*ast.CallExpr)(nil),
		(*ast.RangeStmt)(nil),
	}, func(n ast.Node) {
		if lint.InTestFile(pass, n.Pos()) || waivers.Waived(n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.ImportSpec:
			path, err := strconv.Unquote(n.Path.Value)
			if err != nil {
				return
			}
			if reason, bad := forbiddenImports[path]; bad {
				pass.Reportf(n.Pos(), "import %s is forbidden in kernel packages: %s (//fbvet:ok <reason> to waive)", path, reason)
			}
		case *ast.CallExpr:
			fn := typeutil.StaticCallee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			if reason, bad := forbiddenCalls[fn.Pkg().Path()][fn.Name()]; bad {
				pass.Reportf(n.Pos(), "%s.%s is forbidden in kernel packages: %s (//fbvet:ok <reason> to waive)", fn.Pkg().Name(), fn.Name(), reason)
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic; accumulating in it breaks the bitwise-parity and golden-hash pins — extract and sort the keys first (//fbvet:ok <reason> to waive)")
			}
		}
	})
	return nil, nil
}
