// Fixture for the kernelpurity analyzer: type-checked under
// "fixture/internal/vec", so the determinism contract applies.
package vec

import (
	"math"
	"math/rand" // want `import math/rand is forbidden in kernel packages`
	"time"
)

func fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA is forbidden in kernel packages`
}

func unfused(a, b, c float64) float64 {
	return a*b + c
}

func seed() int64 {
	return time.Now().UnixNano() // want `time\.Now is forbidden in kernel packages`
}

func draw() float64 {
	return rand.Float64()
}

func mapOrdered(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

func sliceOrdered(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func waivedClock() time.Time {
	return time.Now() //fbvet:ok fixture: wall clock feeds a log line, not a kernel result
}

// hist mimics an observability latency histogram: the waived clock read
// below is the instrumentation shape internal/ann uses — guarded by a
// nil check so disabled instrumentation takes no clock reads, and never
// feeding a kernel result.
type hist struct{}

func (h *hist) observeSince(time.Time) {}

func timedSection(h *hist) float64 {
	var t0 time.Time
	if h != nil {
		t0 = time.Now() //fbvet:ok fixture: latency histogram observation, no effect on kernel output
	}
	out := unfused(1, 2, 3)
	if h != nil {
		h.observeSince(t0)
	}
	return out
}
