// Fixture for the kernelpurity analyzer: type-checked under
// "fixture/internal/vec", so the determinism contract applies.
package vec

import (
	"math"
	"math/rand" // want `import math/rand is forbidden in kernel packages`
	"time"
)

func fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA is forbidden in kernel packages`
}

func unfused(a, b, c float64) float64 {
	return a*b + c
}

func seed() int64 {
	return time.Now().UnixNano() // want `time\.Now is forbidden in kernel packages`
}

func draw() float64 {
	return rand.Float64()
}

func mapOrdered(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

func sliceOrdered(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func waivedClock() time.Time {
	return time.Now() //fbvet:ok fixture: wall clock feeds a log line, not a kernel result
}
