// Fixture type-checked under "fixture/internal/experiments" — outside
// the kernel domains, so clocks and maps are fine.
package experiments

import "time"

func stamp(m map[string]int) (time.Time, int) {
	var n int
	for _, v := range m {
		n += v
	}
	return time.Now(), n
}
