package kernelpurity_test

import (
	"testing"

	"repro/tools/fbvet/analyzers/kernelpurity"
	"repro/tools/fbvet/internal/vettest"
)

func TestPurityViolationsAndWaivers(t *testing.T) {
	vettest.Run(t, kernelpurity.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/kernel",
		Path: "fixture/internal/vec",
	})
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	vettest.Run(t, kernelpurity.Analyzer, vettest.Pkg{
		Dir:  "testdata/src/outofscope",
		Path: "fixture/internal/experiments",
	})
}
