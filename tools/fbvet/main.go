// Command fbvet is the repository's invariant-enforcement plane: a
// go/analysis multichecker bundling the five repo-native analyzers
// (fsseam, kernelpurity, sentinelwrap, lockdiscipline, errgate) with
// the upstream copylocks/atomic/lostcancel passes.
//
// It runs two ways:
//
//	go run ./tools/fbvet ./...          # standalone over package patterns
//	go vet -vettool=$(which fbvet) ./... # as a standard vet tool
//
// Both are the same binary: invoked with plain package patterns it
// re-executes itself through `go vet -vettool`, so the standard
// toolchain (build cache, package loading, per-package .cfg protocol
// via unitchecker) does the driving either way, and CI exercises
// exactly the integration developers use locally.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/tools/fbvet/analyzers"
)

func main() {
	args := os.Args[1:]
	if standaloneInvocation(args) {
		os.Exit(standalone(args))
	}
	// vet protocol: -V=full fingerprinting, `help`, or a unit.cfg.
	unitchecker.Main(analyzers.All()...)
}

// standaloneInvocation reports whether args look like package patterns
// (`./...`, `./internal/persist`) rather than the vet tool protocol
// (flags, `help`, or a *.cfg file).
func standaloneInvocation(args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") || a == "help" {
			return false
		}
	}
	return true
}

// standalone re-invokes this binary through `go vet -vettool` over the
// given patterns (default ./...) and returns the exit code.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbvet: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "fbvet: running go vet: %v\n", err)
		return 2
	}
	return 0
}
