// Command errgate is a dependency-free errcheck analogue for this
// repository: it fails the build when a call whose name promises an I/O
// error (Close, Sync, Remove, ...) is used as a bare statement, silently
// discarding that error.
//
// The persistence layer is exactly where a swallowed error turns into
// acknowledged-insert loss — a Sync whose failure nobody sees is a
// durability lie — so the gate is deliberately narrow and name-based:
// no type information, no module resolution, nothing to install. Every
// intentional discard must be spelled `_ = f.Close()` (visible in
// review) or carry a trailing `//errgate:ok <reason>` comment.
//
// Usage:
//
//	go run ./tools/errgate [dir ...]
//
// Directories default to ".". Test files, testdata and vendored code
// are skipped; `defer` and `go` statements are out of scope (their
// result is unrecoverable by construction).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// risky holds method/function names that, on every I/O-bearing type in
// this module (os.File, persist.File, persist.FS, *core.DurableBypass,
// json.Encoder, http.Server, ...), return an error worth looking at.
var risky = map[string]bool{
	"Close":     true,
	"Sync":      true,
	"SyncDir":   true,
	"Flush":     true,
	"Remove":    true,
	"RemoveAll": true,
	"Rename":    true,
	"Truncate":  true,
	"Setenv":    true,
	"Shutdown":  true,
	"Encode":    true,
	"Compact":   true,
}

type finding struct {
	pos  token.Position
	call string
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	var findings []finding
	for _, root := range roots {
		// Accept the idiomatic "./..." spelling as "walk from here".
		root = strings.TrimSuffix(root, "...")
		if root == "" || root == "./" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fileFindings, err := checkFile(fset, path)
			if err != nil {
				return err
			}
			findings = append(findings, fileFindings...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "errgate: %v\n", err)
			os.Exit(2)
		}
	}
	if len(findings) == 0 {
		return
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: result of %s() is discarded; use `_ = %s()` or add //errgate:ok\n",
			f.pos.Filename, f.pos.Line, f.call, f.call)
	}
	fmt.Fprintf(os.Stderr, "errgate: %d swallowed I/O error(s)\n", len(findings))
	os.Exit(1)
}

func checkFile(fset *token.FileSet, path string) ([]finding, error) {
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// Lines carrying an errgate:ok waiver.
	waived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "errgate:ok") {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var findings []finding
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !risky[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(stmt.Pos())
		if waived[pos.Line] {
			return true
		}
		findings = append(findings, finding{pos: pos, call: exprString(sel)})
		return true
	})
	return findings, nil
}

// exprString renders the dotted callee path (`db.fs.Remove`) for the
// message; anything non-trivial collapses to its selector name.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	default:
		return "(...)"
	}
}
