// Benchmarks regenerating every figure of the paper's evaluation (one
// benchmark per figure; the printed series come from cmd/fbbench) plus the
// ablation benchmarks called out in DESIGN.md: incremental vs. naive
// Simplex Tree lookup, the ε storage/accuracy trade-off, index structures
// for the query-processing step, and Haar OQP compression.
//
// Figure benchmarks run at a reduced scale so `go test -bench=.` finishes
// in minutes; cmd/fbbench runs the same drivers at paper scale.
package feedbackbypass_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/feedback"
	"repro/internal/geom"
	"repro/internal/haar"
	"repro/internal/histogram"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/mtree"
	"repro/internal/persist"
	"repro/internal/simplextree"
	"repro/internal/vptree"
)

// benchConfig is the shared small-scale configuration for figure
// benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:           1,
		Scale:          0.08,
		NumQueries:     120,
		K:              10,
		Epsilon:        0.05,
		MeasureSavings: true,
	}
}

var (
	benchSessionOnce sync.Once
	benchSession     *experiments.Session
	benchSessionErr  error
)

// sharedBenchSession trains one session reused by the per-figure
// benchmarks whose drivers only aggregate session records.
func sharedBenchSession(b *testing.B) *experiments.Session {
	b.Helper()
	benchSessionOnce.Do(func() {
		s, err := experiments.NewSession(benchConfig())
		if err != nil {
			benchSessionErr = err
			return
		}
		benchSessionErr = s.Run()
		benchSession = s
	})
	if benchSessionErr != nil {
		b.Fatal(benchSessionErr)
	}
	return benchSession
}

func BenchmarkFigure1(b *testing.B) {
	s := sharedBenchSession(b)
	itemIdx := s.Records[0].ItemIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(s, itemIdx, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := sharedBenchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(s, "Fish", 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := sharedBenchSession(b)
	b.ResetTimer()
	var lastGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		if n := res.GainFB.Len(); n > 0 {
			lastGain = res.GainFB.Y[n-1]
		}
	}
	b.ReportMetric(lastGain, "final-FB-gain-%")
}

func BenchmarkFigure11(b *testing.B) {
	s := sharedBenchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(s, []int{10, 20, 40}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	cfg := benchConfig()
	cfg.NumQueries = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(cfg, []int{5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	cfg := benchConfig()
	cfg.NumQueries = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(cfg, []int{5, 10}, []int{10, 20}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	s := sharedBenchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	cfg := benchConfig()
	cfg.NumQueries = 40
	b.ResetTimer()
	var lastSaved float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure15(cfg, []int{5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if n := res.SavedCycles[len(res.SavedCycles)-1].Len(); n > 0 {
			lastSaved = res.SavedCycles[len(res.SavedCycles)-1].Y[n-1]
		}
	}
	b.ReportMetric(lastSaved, "final-saved-cycles")
}

func BenchmarkFigure16(b *testing.B) {
	s := sharedBenchSession(b)
	b.ResetTimer()
	var depth, traversed float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure16(s)
		if err != nil {
			b.Fatal(err)
		}
		if n := res.Depth.Len(); n > 0 {
			depth = res.Depth.Y[n-1]
			traversed = res.Traversed.Y[n-1]
		}
	}
	b.ReportMetric(depth, "tree-depth")
	b.ReportMetric(traversed, "avg-traversed")
}

// --- Ablation: incremental barycentric descent vs. per-node solves. ---

func buildBenchTree(b *testing.B, d, points int) (*simplextree.Tree, [][]float64) {
	b.Helper()
	def := make([]float64, 2*d)
	tree, err := simplextree.New(geom.StandardSimplex(d), def, simplextree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	interior := func() []float64 {
		w := make([]float64, d+1)
		var sum float64
		for i := range w {
			w[i] = 0.05 + rng.Float64()
			sum += w[i]
		}
		q := make([]float64, d)
		for i := 0; i < d; i++ {
			q[i] = w[i+1] / sum
		}
		return q
	}
	for i := 0; i < points; i++ {
		v := make([]float64, 2*d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if _, err := tree.Insert(interior(), v); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = interior()
	}
	return tree, queries
}

func BenchmarkLookupIncremental(b *testing.B) {
	tree, queries := buildBenchTree(b, 31, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Predict(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent prediction plane (paper-scale Simplex Tree, D = 31). ---

// predictBenchTree is the shared read-mostly tree of the prediction-plane
// benchmarks: paper-scale dimensions with 1000 stored points.
func predictBenchTree(b *testing.B) (*simplextree.Tree, [][]float64) {
	b.Helper()
	predictTreeOnce.Do(func() {
		d := 31
		def := make([]float64, 2*d)
		tree, err := simplextree.New(geom.StandardSimplex(d), def, simplextree.Options{})
		if err != nil {
			predictTreeErr = err
			return
		}
		rng := rand.New(rand.NewSource(37))
		interior := func() []float64 {
			w := make([]float64, d+1)
			var sum float64
			for i := range w {
				w[i] = 0.05 + rng.Float64()
				sum += w[i]
			}
			q := make([]float64, d)
			for i := 0; i < d; i++ {
				q[i] = w[i+1] / sum
			}
			return q
		}
		for i := 0; i < 1000; i++ {
			v := make([]float64, 2*d)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if _, err := tree.Insert(interior(), v); err != nil {
				predictTreeErr = err
				return
			}
		}
		qs := make([][]float64, 1024)
		for i := range qs {
			qs[i] = interior()
		}
		predictTree, predictQueries = tree, qs
	})
	if predictTreeErr != nil {
		b.Fatal(predictTreeErr)
	}
	return predictTree, predictQueries
}

var (
	predictTreeOnce sync.Once
	predictTree     *simplextree.Tree
	predictQueries  [][]float64
	predictTreeErr  error
)

// BenchmarkPredict measures the serial allocation-free read path — the
// baseline the parallel series is compared against.
func BenchmarkPredict(b *testing.B) {
	tree, queries := predictBenchTree(b)
	dst := make([]float64, tree.OQPDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.PredictInto(dst, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictParallel runs the read path from GOMAXPROCS goroutines
// sharing the read lock — the concurrent-sessions shape. Compare ns/op
// against BenchmarkPredict: on a multi-core host throughput scales with
// cores because readers never exclude each other.
func BenchmarkPredictParallel(b *testing.B) {
	tree, queries := predictBenchTree(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]float64, tree.OQPDim())
		i := 0
		for pb.Next() {
			if _, err := tree.PredictInto(dst, queries[i%len(queries)]); err != nil {
				b.Error(err) // FailNow is not allowed on RunParallel workers
				return
			}
			i++
		}
	})
}

// BenchmarkPredictParallel8 pins the 8-goroutine series of the
// acceptance criterion regardless of GOMAXPROCS: one op = the whole
// 1024-query workload split across 8 goroutines (ns/query is reported).
func BenchmarkPredictParallel8(b *testing.B) {
	tree, queries := predictBenchTree(b)
	const workers = 8
	chunk := (len(queries) + workers - 1) / workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(queries) {
				hi = len(queries)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				dst := make([]float64, tree.OQPDim())
				for _, q := range queries[lo:hi] {
					if _, err := tree.PredictInto(dst, q); err != nil {
						b.Error(err)
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/query")
}

// BenchmarkPredictBatch measures the batch Mopt API: one op = one
// 1024-query PredictBatch under a single lock acquisition.
func BenchmarkPredictBatch(b *testing.B) {
	tree, queries := predictBenchTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tree.PredictBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/query")
}

// BenchmarkWALAppend measures the durability tax per accepted insert:
// one fixed-size record (D=31, N=62) written to the journal.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	wal, err := persist.OpenWAL(filepath.Join(dir, "bench.fbwl"), 31, 62)
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	q := make([]float64, 31)
	v := make([]float64, 62)
	for i := range q {
		q[i] = float64(i) / 40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v[0] = float64(i)
		if err := wal.Append(q, v, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupNaive(b *testing.B) {
	tree, queries := buildBenchTree(b, 31, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.PredictNaive(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexTreeInsertD31(b *testing.B) {
	d := 31
	rng := rand.New(rand.NewSource(11))
	def := make([]float64, 2*d)
	interior := func() []float64 {
		w := make([]float64, d+1)
		var sum float64
		for i := range w {
			w[i] = 0.05 + rng.Float64()
			sum += w[i]
		}
		q := make([]float64, d)
		for i := 0; i < d; i++ {
			q[i] = w[i+1] / sum
		}
		return q
	}
	b.ResetTimer()
	var tree *simplextree.Tree
	for i := 0; i < b.N; i++ {
		if i%500 == 0 {
			// Re-create periodically so depth stays representative.
			var err error
			tree, err = simplextree.New(geom.StandardSimplex(d), def, simplextree.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		v := make([]float64, 2*d)
		v[0] = float64(i)
		if _, err := tree.Insert(interior(), v); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: ε storage/accuracy trade-off (§4.2). ---

func BenchmarkInsertEpsilonSweep(b *testing.B) {
	for _, eps := range []float64{0, 0.1, 0.5, 2} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			d := 15
			rng := rand.New(rand.NewSource(13))
			def := make([]float64, d)
			var stored int
			b.ResetTimer()
			var tree *simplextree.Tree
			count := 0
			for i := 0; i < b.N; i++ {
				if count == 0 {
					var err error
					tree, err = simplextree.New(geom.StandardSimplex(d), def, simplextree.Options{Epsilon: eps})
					if err != nil {
						b.Fatal(err)
					}
				}
				w := make([]float64, d+1)
				var sum float64
				for j := range w {
					w[j] = 0.05 + rng.Float64()
					sum += w[j]
				}
				q := make([]float64, d)
				for j := 0; j < d; j++ {
					q[j] = w[j+1] / sum
				}
				v := make([]float64, d)
				for j := range v {
					v[j] = rng.NormFloat64() // values vary at σ=1: ε carves real tiers
				}
				if _, err := tree.Insert(q, v); err != nil {
					b.Fatal(err)
				}
				count++
				if count == 400 {
					stored = tree.NumPoints()
					count = 0
				}
			}
			if stored == 0 && tree != nil {
				stored = tree.NumPoints()
			}
			b.ReportMetric(float64(stored), "stored-per-400")
		})
	}
}

// --- Ablation: query-processing index structures at D = 32. ---

// benchCollection returns the feature matrix of a collection with ~n
// images. The paper-scale collection (n = 9800, the cardinality of §5's
// IMSI subset) is built once and shared across the KNN benchmarks.
func benchCollection(b *testing.B, n int) [][]float64 {
	b.Helper()
	if n == paperScaleN {
		paperCollectionOnce.Do(func() {
			paperCollection, paperCollectionErr = buildCollection(n)
		})
		if paperCollectionErr != nil {
			b.Fatal(paperCollectionErr)
		}
		return paperCollection
	}
	data, err := buildCollection(n)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

const paperScaleN = 9800

var (
	paperCollectionOnce sync.Once
	paperCollection     [][]float64
	paperCollectionErr  error
)

func buildCollection(n int) ([][]float64, error) {
	ds, err := dataset.Build(imagegen.IMSILike(5, float64(n)/9800.0), histogram.DefaultExtractor)
	if err != nil {
		return nil, err
	}
	return ds.Features(), nil
}

// BenchmarkKNNScan is the acceptance benchmark of the retrieval core:
// k = 50 at D = 32 over the paper-scale collection, processing the
// paper's workload shape — a stream of queries (§5 trains on 1000-query
// streams) — through the cache-tiled, early-abandoning, squared-space
// batch scan. One op = one 64-query batch; the headline number is the
// reported ns/query. Compare against BenchmarkKNNScanNaive (the
// seed-equivalent per-row Metric path, whose per-query cost batching
// cannot improve) and BenchmarkKNNScanSingle (one lone kernel query,
// memory-bound on the full slab stream).
func BenchmarkKNNScan(b *testing.B) {
	data := benchCollection(b, paperScaleN)
	scan, err := knn.NewScan(data)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	qs := make([][]float64, batch)
	for i := range qs {
		qs[i] = data[(i*131)%len(data)]
	}
	m := distance.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.SearchBatch(qs, 50, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/query")
}

// BenchmarkKNNScanNaive measures the generic virtual-dispatch scan (one
// Metric.Distance call and one sqrt per database vector) on the same
// query stream — the reference the kernel's speedup is quoted against.
// Its per-query cost is identical with or without batching: each naive
// search streams the whole slab and does full-dimension work per row.
func BenchmarkKNNScanNaive(b *testing.B) {
	data := benchCollection(b, paperScaleN)
	scan, err := knn.NewScan(data)
	if err != nil {
		b.Fatal(err)
	}
	m := distance.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.SearchNaive(data[(i*131)%len(data)], 50, m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/query")
}

// BenchmarkKNNScanSingle measures one lone kernel query — the latency
// floor when no batch is available to amortize the memory stream.
func BenchmarkKNNScanSingle(b *testing.B) {
	data := benchCollection(b, paperScaleN)
	scan, err := knn.NewScan(data)
	if err != nil {
		b.Fatal(err)
	}
	m := distance.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.Search(data[(i*131)%len(data)], 50, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNScanWeighted runs the kernel path under a re-weighted
// metric — the shape of every post-feedback retrieval in the loop.
func BenchmarkKNNScanWeighted(b *testing.B) {
	data := benchCollection(b, paperScaleN)
	scan, err := knn.NewScan(data)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, len(data[0]))
	for i := range w {
		w[i] = 0.5 + float64(i%4)
	}
	wm, err := distance.NewWeightedEuclidean(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.Search(data[i%len(data)], 50, wm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNSearchBatch measures batched retrieval throughput (queries
// fan out across GOMAXPROCS workers); the metric of interest is
// ns/query = ns/op ÷ 64.
func BenchmarkKNNSearchBatch(b *testing.B) {
	data := benchCollection(b, paperScaleN)
	scan, err := knn.NewScan(data)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	qs := make([][]float64, batch)
	for i := range qs {
		qs[i] = data[(i*131)%len(data)]
	}
	m := distance.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.SearchBatch(qs, 50, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNVPTree(b *testing.B) {
	data := benchCollection(b, 2000)
	tree, err := vptree.Build(data, distance.Euclidean{}, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(data[i%len(data)], 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNMTree(b *testing.B) {
	data := benchCollection(b, 2000)
	tree, err := mtree.BuildFrom(data, distance.Euclidean{}, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(data[i%len(data)], 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNVPTreeWeighted(b *testing.B) {
	data := benchCollection(b, 2000)
	tree, err := vptree.Build(data, distance.Euclidean{}, 3)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, len(data[0]))
	for i := range w {
		w[i] = 0.5 + float64(i%4)
	}
	wm, err := distance.NewWeightedEuclidean(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.SearchWeighted(data[i%len(data)], 50, wm); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: Haar compression of stored OQP vectors (§3.1 trade-off). ---

func BenchmarkOQPCompression(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	oqp := make([]float64, 62) // the paper's N = 62
	for i := range oqp {
		oqp[i] = rng.NormFloat64()
	}
	for _, eps := range []float64{0, 0.05, 0.2} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var kept int
			for i := 0; i < b.N; i++ {
				s, err := haar.Compress(oqp, eps)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Decompress(); err != nil {
					b.Fatal(err)
				}
				kept = s.StorageSize()
			}
			b.ReportMetric(float64(kept), "coeffs-kept")
		})
	}
}

// --- Component micro-benchmarks. ---

func BenchmarkBarycentricSolveD31(b *testing.B) {
	s := geom.StandardSimplex(31)
	q := make([]float64, 31)
	for i := range q {
		q[i] = 1.0 / 40
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Barycentric(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeedbackRefine(b *testing.B) {
	eng, err := feedback.New(feedback.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	q := make([]float64, 32)
	results := make([][]float64, 50)
	scores := make([]float64, 50)
	for i := range results {
		v := make([]float64, 32)
		for j := range v {
			v[j] = rng.Float64()
		}
		results[i] = v
		if i%3 == 0 {
			scores[i] = feedback.ScoreGood
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Refine(q, results, scores); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramExtract(b *testing.B) {
	imgs, err := imagegen.Generate(imagegen.Config{
		Seed: 1, ImageW: 24, ImageH: 24,
		Categories: []imagegen.Category{{
			Name: "X", Count: 1,
			Themes: []imagegen.Theme{{Name: "t", Blobs: []imagegen.Blob{{Hue: 100, HueStd: 10, Sat: 0.5, SatStd: 0.1, Weight: 1}}}},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := histogram.DefaultExtractor.Extract(imgs[0].Image); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramCodecRoundTrip(b *testing.B) {
	codec, err := core.NewHistogramCodec(32)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	q := make([]float64, 32)
	var sum float64
	for i := range q {
		q[i] = 0.1 + rng.Float64()
		sum += q[i]
	}
	for i := range q {
		q[i] /= sum
	}
	w := make([]float64, 32)
	for i := range w {
		w[i] = 0.25 + rng.Float64()*4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oqp, err := codec.EncodeOQP(q, q, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := codec.DecodeOQP(q, oqp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQuery measures the full per-query protocol: predict,
// retrieve, feedback loop, insert — the unit of work of Figures 10–15.
func BenchmarkEndToEndQuery(b *testing.B) {
	cfg := benchConfig()
	cfg.MeasureSavings = false
	s, err := experiments.NewSession(cfg)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := s.DS.SampleQueries(rand.New(rand.NewSource(29)), 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ProcessQuery(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eval.MeanOf(precisions(s.Records)), "avg-bypass-precision")
}

func precisions(recs []experiments.QueryRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.PrecisionBypass()
	}
	return out
}
