package feedbackbypass_test

import (
	"bytes"
	"testing"

	feedbackbypass "repro"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/histogram"
	"repro/internal/imagegen"
)

// TestIntegrationFullPipeline drives the complete paper workflow through
// the public API: build the image collection, attach a Bypass to the
// interactive engine, train it on feedback-loop outcomes, verify that
// predictions improve first-round retrieval, persist the module, and
// confirm the reloaded module behaves identically.
func TestIntegrationFullPipeline(t *testing.T) {
	ds, err := dataset.Build(imagegen.IMSILike(31, 0.05), histogram.DefaultExtractor)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(ds, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bypass, codec, err := feedbackbypass.NewForHistograms(ds.Dim, feedbackbypass.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	const k = 10
	// Train: run the feedback loop for the first half of the query pool
	// and store every converged outcome through the public API.
	var pool []int
	for _, cat := range ds.QueryCats {
		pool = append(pool, ds.ByCategory[cat]...)
	}
	if len(pool) < 40 {
		t.Fatalf("pool too small: %d", len(pool))
	}
	trainN := len(pool) / 2
	for _, idx := range pool[:trainN] {
		item := ds.Items[idx]
		out, err := eng.RunLoop(item.Category, item.Feature, eng.UniformWeights(), k)
		if err != nil {
			t.Fatal(err)
		}
		oqp, err := codec.EncodeOQP(item.Feature, out.QOpt, out.WOpt)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := codec.QueryPoint(item.Feature)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bypass.Insert(qp, oqp); err != nil {
			t.Fatal(err)
		}
	}
	if bypass.Stats().Points == 0 {
		t.Fatal("nothing was learned")
	}

	// Evaluate on the held-out half: predicted parameters must not lose to
	// the defaults on aggregate.
	var goodDefault, goodBypass int
	for _, idx := range pool[trainN:] {
		item := ds.Items[idx]
		defRes, err := eng.Retrieve(item.Feature, eng.UniformWeights(), k)
		if err != nil {
			t.Fatal(err)
		}
		goodDefault += eng.GoodCount(item.Category, defRes)

		qp, err := codec.QueryPoint(item.Feature)
		if err != nil {
			t.Fatal(err)
		}
		oqp, err := bypass.Predict(qp)
		if err != nil {
			t.Fatal(err)
		}
		qPred, wPred, err := codec.DecodeOQP(item.Feature, oqp)
		if err != nil {
			t.Fatal(err)
		}
		bypRes, err := eng.Retrieve(qPred, wPred, k)
		if err != nil {
			t.Fatal(err)
		}
		goodBypass += eng.GoodCount(item.Category, bypRes)
	}
	t.Logf("held-out good matches: default %d, bypass %d (over %d queries at k=%d)",
		goodDefault, goodBypass, len(pool)-trainN, k)
	if goodBypass < goodDefault {
		t.Errorf("predictions lose to defaults on held-out queries: %d < %d", goodBypass, goodDefault)
	}

	// Persist and reload: predictions must be bit-identical.
	var buf bytes.Buffer
	if err := feedbackbypass.Save(&buf, bypass); err != nil {
		t.Fatal(err)
	}
	reloaded, err := feedbackbypass.Load(&buf, codec.P())
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range pool[trainN : trainN+10] {
		qp, _ := codec.QueryPoint(ds.Items[idx].Feature)
		a, err1 := bypass.Predict(qp)
		b, err2 := reloaded.Predict(qp)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for j := range a.Delta {
			if a.Delta[j] != b.Delta[j] {
				t.Fatal("delta drift after reload")
			}
		}
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				t.Fatal("weights drift after reload")
			}
		}
	}
}
