package feedbackbypass_test

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	feedbackbypass "repro"
)

func TestNewForHistograms(t *testing.T) {
	b, codec, err := feedbackbypass.NewForHistograms(32, feedbackbypass.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if b.D() != 31 || b.P() != 31 {
		t.Errorf("D=%d P=%d", b.D(), b.P())
	}
	if codec.Bins != 32 {
		t.Errorf("codec bins = %d", codec.Bins)
	}
	if _, _, err := feedbackbypass.NewForHistograms(1, feedbackbypass.Config{}); err == nil {
		t.Error("1 bin should error")
	}
}

// randomHistogram returns a random normalized histogram with strictly
// positive bins.
func randomHistogram(rng *rand.Rand, bins int) []float64 {
	h := make([]float64, bins)
	var sum float64
	for i := range h {
		h[i] = 0.05 + rng.ExpFloat64()
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func TestPublicAPIFlow(t *testing.T) {
	bins := 8
	b, codec, err := feedbackbypass.NewForHistograms(bins, feedbackbypass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	q := randomHistogram(rng, bins)
	qp, err := codec.QueryPoint(q)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained module predicts defaults: zero offset, uniform weights.
	oqp, err := b.Predict(qp)
	if err != nil {
		t.Fatal(err)
	}
	qOpt, w, err := codec.DecodeOQP(q, oqp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q {
		if math.Abs(qOpt[i]-q[i]) > 1e-9 {
			t.Errorf("default qopt[%d] = %v, want %v", i, qOpt[i], q[i])
		}
		if math.Abs(w[i]-1) > 1e-9 {
			t.Errorf("default w[%d] = %v, want 1", i, w[i])
		}
	}
	// Learn an optimum and read it back.
	qBest := append([]float64(nil), q...)
	qBest[0] += 0.03
	qBest[1] -= 0.03
	wBest := []float64{4, 1, 1, 1, 1, 1, 1, 1}
	learned, err := codec.EncodeOQP(q, qBest, wBest)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := b.Insert(qp, learned)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("insert should store")
	}
	oqp2, err := b.Predict(qp)
	if err != nil {
		t.Fatal(err)
	}
	qOpt2, w2, err := codec.DecodeOQP(q, oqp2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qBest {
		if math.Abs(qOpt2[i]-qBest[i]) > 1e-9 {
			t.Errorf("learned qopt[%d] = %v, want %v", i, qOpt2[i], qBest[i])
		}
	}
	if math.Abs(w2[0]-4) > 1e-9 {
		t.Errorf("learned w[0] = %v, want 4", w2[0])
	}
	st := b.Stats()
	if st.Points != 1 {
		t.Errorf("stats points = %d", st.Points)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	bins := 6
	b, codec, err := feedbackbypass.NewForHistograms(bins, feedbackbypass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var queries [][]float64
	for i := 0; i < 15; i++ {
		q := randomHistogram(rng, bins)
		qp, err := codec.QueryPoint(q)
		if err != nil {
			t.Fatal(err)
		}
		qBest := append([]float64(nil), q...)
		qBest[i%bins] = math.Min(qBest[i%bins]+0.02, 1)
		w := make([]float64, bins)
		for j := range w {
			w[j] = 0.5 + rng.Float64()*3
		}
		oqp, err := codec.EncodeOQP(q, q, w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Insert(qp, oqp); err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	var buf bytes.Buffer
	if err := feedbackbypass.Save(&buf, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := feedbackbypass.Load(&buf, codec.P())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		qp, _ := codec.QueryPoint(q)
		want, err1 := b.Predict(qp)
		got, err2 := loaded.Predict(qp)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range want.Delta {
			if math.Abs(got.Delta[i]-want.Delta[i]) > 1e-12 {
				t.Fatal("delta mismatch after load")
			}
		}
		for i := range want.Weights {
			if math.Abs(got.Weights[i]-want.Weights[i]) > 1e-12 {
				t.Fatal("weights mismatch after load")
			}
		}
	}
	if err := feedbackbypass.Save(&buf, nil); err == nil {
		t.Error("nil module should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.fbsx")
	b, codec, err := feedbackbypass.NewForHistograms(4, feedbackbypass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := feedbackbypass.SaveFile(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := feedbackbypass.LoadFile(path, codec.P())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.D() != 3 || loaded.P() != 3 {
		t.Errorf("loaded dims %d, %d", loaded.D(), loaded.P())
	}
	if err := feedbackbypass.SaveFile(path, nil); err == nil {
		t.Error("nil module should error")
	}
	if _, err := feedbackbypass.LoadFile(filepath.Join(dir, "missing"), 3); err == nil {
		t.Error("missing file should error")
	}
	// Wrong parameter split on load is rejected.
	if _, err := feedbackbypass.LoadFile(path, 99); err == nil {
		t.Error("wrong P should error")
	}
}

func TestCoveringSimplexDomain(t *testing.T) {
	// Non-histogram features in [0,1]^D use the covering simplex domain.
	d := 4
	b, err := feedbackbypass.New(d, d, feedbackbypass.Config{Domain: feedbackbypass.CoveringSimplex(d)})
	if err != nil {
		t.Fatal(err)
	}
	// Corner of the cube is inside the covering simplex.
	oqp, err := b.Predict([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(oqp.Delta) != d {
		t.Errorf("Delta dim = %d", len(oqp.Delta))
	}
	if _, err := feedbackbypass.New(d, d, feedbackbypass.Config{Domain: feedbackbypass.StandardSimplex(d + 1)}); err == nil {
		t.Error("mismatched domain should error")
	}
}

// TestShardedFacade exercises the root-level sharded API: open, insert,
// kill (no Close), recover, predict parity.
func TestShardedFacade(t *testing.T) {
	const d, p = 3, 3
	dir := t.TempDir()
	sh, err := feedbackbypass.OpenSharded(dir, d, p, feedbackbypass.Config{Epsilon: 0}, feedbackbypass.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.2, 0.3, 0.4}
	oqp := feedbackbypass.OQP{Delta: []float64{0.01, -0.01, 0}, Weights: []float64{0.5, -0.5, 0.25}}
	changed, err := sh.Insert(q, oqp)
	if err != nil || !changed {
		t.Fatalf("insert: changed=%v err=%v", changed, err)
	}
	want, err := sh.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	// Crash (no Close) and recover.
	recovered, err := feedbackbypass.OpenSharded(dir, d, p, feedbackbypass.Config{Epsilon: 0}, feedbackbypass.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.NumShards() != 4 {
		t.Fatalf("recovered %d shards, want 4", recovered.NumShards())
	}
	got, err := recovered.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Delta {
		if got.Delta[i] != want.Delta[i] || got.Weights[i] != want.Weights[i] {
			t.Fatalf("recovered prediction diverged: %+v vs %+v", got, want)
		}
	}
	mem, err := feedbackbypass.NewSharded(d, p, feedbackbypass.Config{}, feedbackbypass.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mem.NumShards() != 2 {
		t.Fatal("in-memory sharded shard count")
	}
}
